package cluster

import (
	"runtime"
	"sort"
	"time"

	"evolve/internal/chaos"
	"evolve/internal/obs"
	"evolve/internal/perf"
	"evolve/internal/plo"
	"evolve/internal/resource"
	"evolve/internal/sim"
)

// Sharded tick.
//
// With cfg.Shards > 1 the cluster's entities are partitioned onto shard
// engines by stable name hash — nodes and apps each land on one shard
// forever — and the tick decomposes into three phases fanned out as one
// event per shard at the current timestamp, driven to completion by
// sim.Coordinator.DrainShards between the serial sections:
//
//	P1 per-node:  interference slowdown from last tick's usage
//	P2 per-app:   load → perf model → telemetry windows and series
//	P3 per-node:  usage summation from the pods bound to the node
//
// Each phase only writes state its shard owns (its nodes' scratch
// fields, its apps' windows and metric instruments) plus per-app
// buffers; everything with a canonical global order — registry writes,
// trace events, fault counters, float totals — is staged and applied at
// the barrier in appList/nodeList name order. Phase reads of foreign
// state (an app reading the slowdown of a node on another shard, a node
// summing usage written by apps on other shards) always cross a phase
// barrier, never a concurrent write. That discipline, plus per-app
// keyed random streams (sim.PartitionedRNG), is why any shard count —
// and any worker count — replays byte-identically against the
// single-engine path in tick.go.

// shardState is one shard's partition of the cluster.
type shardState struct {
	c          *Cluster
	eng        *sim.Engine
	idx        int           // shard index, for phase-timing attribution
	apps       []*appState   // this shard's services, name order
	nodes      []*NodeObject // this shard's nodes, name order
	scratchRun []*PodObject  // per-shard running-replica scratch

	// Cached phase closures so the per-tick fan-out allocates nothing.
	p1, p2, p3 func()
}

// initShards builds the coordinator, the dense hot state and the
// (initially empty) shard partitions; indexAddNode/indexAddApp route
// entities to their shard as they are created. workers <= 0 defaults to
// min(n, GOMAXPROCS): more workers than shards can never run, and more
// workers than cores only adds scheduler pressure.
func (c *Cluster) initShards(n, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > n {
			workers = n
		}
	}
	c.co = sim.NewCoordinator(c.eng, n, workers)
	c.co.SetBatched(c.cfg.BatchedRounds)
	c.hot = &hotState{}
	c.shards = make([]*shardState, n)
	for i := range c.shards {
		sh := &shardState{c: c, eng: c.co.Shard(i), idx: i}
		sh.p1, sh.p2, sh.p3 = sh.phase1, sh.phase2, sh.phase3
		c.shards[i] = sh
	}
}

// shardOfApp and shardOfNode key the stable entity→shard mapping. The
// kind prefix keeps an app and a node that share a name on independent
// hashes.
func shardOfApp(name string, n int) int  { return sim.ShardOf("app/"+name, n) }
func shardOfNode(name string, n int) int { return sim.ShardOf("node/"+name, n) }

func (sh *shardState) addNode(n *NodeObject) {
	i := sort.Search(len(sh.nodes), func(j int) bool { return sh.nodes[j].Name > n.Name })
	sh.nodes = append(sh.nodes, nil)
	copy(sh.nodes[i+1:], sh.nodes[i:])
	sh.nodes[i] = n
}

func (sh *shardState) addApp(st *appState) {
	name := st.obj.Spec.Name
	i := sort.Search(len(sh.apps), func(j int) bool { return sh.apps[j].obj.Spec.Name > name })
	sh.apps = append(sh.apps, nil)
	copy(sh.apps[i+1:], sh.apps[i:])
	sh.apps[i] = st
}

// phase1 refreshes interference slowdowns for the shard's nodes,
// mirroring each into the dense slow array P2 gathers from.
func (sh *shardState) phase1() {
	c := sh.c
	var t0 time.Time
	if c.phases != nil {
		t0 = time.Now()
	}
	hot := c.hot
	for _, n := range sh.nodes {
		c.nodeSlowdown(n)
		hot.slow[n.slot] = n.slow
	}
	if c.phases != nil {
		c.phases.AddShard(sh.idx, perf.PhaseP1, time.Since(t0).Nanoseconds())
	}
}

// phase2 evaluates the shard's apps against their offered load — on the
// dense path (quiescent store) via the cached ready aggregates, else
// via the staging pointer walk.
func (sh *shardState) phase2() {
	c := sh.c
	var t0 time.Time
	if c.phases != nil {
		t0 = time.Now()
	}
	now := sh.eng.Now()
	if c.hot.fast {
		for _, st := range sh.apps {
			c.phaseAppFast(st, now)
		}
	} else {
		for _, st := range sh.apps {
			sh.scratchRun = c.phaseApp(st, now, sh.scratchRun)
		}
	}
	if c.phases != nil {
		c.phases.AddShard(sh.idx, perf.PhaseP2, time.Since(t0).Nanoseconds())
	}
}

// phase3 re-derives per-node usage from the pods bound to the shard's
// nodes.
func (sh *shardState) phase3() {
	c := sh.c
	var t0 time.Time
	if c.phases != nil {
		t0 = time.Now()
	}
	if c.hot.fast {
		now := sh.eng.Now()
		for _, n := range sh.nodes {
			c.phaseNodeUsageFast(n, now)
		}
	} else {
		for _, n := range sh.nodes {
			c.phaseNodeUsage(n)
		}
	}
	if c.phases != nil {
		c.phases.AddShard(sh.idx, perf.PhaseP3, time.Since(t0).Nanoseconds())
	}
}

// tickSharded is the body of the tick after schedulePending when the
// kernel is sharded: fan each phase out as one event per shard at the
// current instant, drain to the barrier, apply the staged cross-shard
// effects in canonical order. Ordering note: the phases run to
// completion inside this call — before the tick event returns — so a
// control-loop event queued at the same timestamp (with a lower
// sequence number than the phase events) still observes a fully
// consistent cluster, exactly as it does after the serial tick.
func (c *Cluster) tickSharded() {
	now := c.now()
	// The dense path requires a quiescent registry: nobody to notify,
	// nobody observing per-object versions. A tracer (or any watcher)
	// drops the tick back to the staging path, whose flush notifies in
	// canonical order; pod usage deferred by earlier dense ticks is
	// materialised first so the staging path (and the watchers) see
	// exactly the state the serial tick would have left.
	fast := c.store.Quiescent()
	if !fast {
		c.syncPodUsage()
	}
	c.hot.fast = fast

	pb := c.phases
	var tickT0 time.Time
	if pb != nil {
		tickT0 = time.Now() // whole-kernel wall time, for the tick-max tail
	}
	for _, sh := range c.shards {
		sh.eng.Post(now, sh.p1)
	}
	c.co.DrainShards(now)
	for _, sh := range c.shards {
		sh.eng.Post(now, sh.p2)
	}
	c.co.DrainShards(now)
	var t0 time.Time
	if pb != nil {
		t0 = time.Now()
	}
	if fast {
		c.flushAppsFast()
	} else {
		c.flushApps()
	}
	if pb != nil {
		pb.Add(perf.PhaseFlushApps, time.Since(t0).Nanoseconds())
	}
	for _, sh := range c.shards {
		sh.eng.Post(now, sh.p3)
	}
	c.co.DrainShards(now)
	if pb != nil {
		t0 = time.Now()
	}
	if fast {
		c.flushNodesFast(now)
	} else {
		c.flushNodes(now)
	}
	if fast {
		c.hot.usageStale = true
		c.hot.lastPhaseAt = now
	}
	if pb != nil {
		pb.Add(perf.PhaseFlushNodes, time.Since(t0).Nanoseconds())
		bar, mail := c.co.TakeTimings()
		pb.Add(perf.PhaseBarrier, bar)
		pb.Add(perf.PhaseMailbox, mail)
		pb.Ticks++
		pb.ObserveTick(time.Since(tickT0).Nanoseconds())
		if c.tracer.Enabled() {
			// Phase timing plus tracing is a bench/debug configuration;
			// lift this tick's per-phase deltas into instant spans.
			c.emitPhaseSpans(now, pb, c.co)
		}
	}
}

// phaseApp is one app's share of P2 — the same arithmetic, stream draws
// and window writes as the serial loop in tick.go, with every globally
// ordered side effect staged on the appState instead of applied
// in-place: registry updates into updBuf, the PLO onset/clear trace
// event into traceEv, fault tallies into tickDrop/tickStale/chaosStats.
// flushApps applies them at the barrier in appList order, which makes
// the observable effect sequence identical to the serial loop's.
func (c *Cluster) phaseApp(st *appState, now time.Duration, scratch []*PodObject) []*PodObject {
	spec := st.obj.Spec
	lambda := st.loadFn(now)
	if lambda < 0 {
		lambda = 0
	}

	pods := c.byApp[spec.Name]
	running := scratch[:0]
	for _, p := range pods {
		if p.Phase == Running && p.ReadyAt <= now {
			running = append(running, p)
		}
	}

	var result perf.Result
	if len(running) == 0 {
		result = perf.Result{
			MeanLatency: spec.Model.MaxLatency,
			P99Latency:  spec.Model.MaxLatency,
			Throughput:  0,
			Saturated:   lambda > 0,
		}
		for _, p := range pods {
			if !p.Usage.IsZero() {
				p.Usage = resource.Vector{}
				st.updBuf = append(st.updBuf, p)
			}
		}
	} else {
		var alloc resource.Vector
		var slow float64
		for _, p := range running {
			alloc = alloc.Add(p.Requests)
			slow += c.nodes[p.Node].slow
		}
		alloc = alloc.Scale(1 / float64(len(running)))
		slow /= float64(len(running))
		result = spec.Model.Evaluate(lambda, len(running), alloc, slow)
		for _, p := range running {
			p.Usage = result.Usage
			st.updBuf = append(st.updBuf, p)
		}
	}

	c.phaseAppTail(st, now, lambda, len(running), result)
	return running
}

// phaseAppTail is the telemetry half of P2 — noise, chaos sampling,
// window appends, metric handles, PLO tracking — shared verbatim by the
// pointer-walking and dense paths so both produce identical observable
// numbers. ready is the serving replica count this tick.
func (c *Cluster) phaseAppTail(st *appState, now time.Duration, lambda float64, ready int, result perf.Result) {
	spec := st.obj.Spec
	noise := 1.0
	if c.cfg.MeasurementNoise > 0 {
		noise = st.noise.Jitter(1, c.cfg.MeasurementNoise)
	}
	meanLat := result.MeanLatency.Seconds() * noise
	p99Lat := result.P99Latency.Seconds() * noise
	throughput := result.Throughput * noise

	sli := meanLat
	switch spec.PLO.Metric {
	case plo.P99Latency:
		sli = p99Lat
	case plo.Throughput:
		sli = throughput
	}
	// Same burn accounting as the serial tick: the sample covers one
	// metrics interval of service time. App-owned state only, so the
	// shard worker may write it without staging.
	st.tracker.ObserveFor(sli, c.cfg.MetricsInterval.Seconds())

	st.winTicks++
	s := sensedSample{sli: sli, mean: meanLat, p99: p99Lat, tput: throughput, offered: lambda, usage: result.Usage, util: result.Utilisation}
	deliver, stale := true, false
	if c.chaos != nil {
		switch v, factor := c.chaos.SampleWith(st.chaosRNG, &st.chaosStats, spec.Name, now, c); v {
		case chaos.SampleDrop:
			deliver = false
			st.tickDrop++
		case chaos.SampleFreeze:
			if st.haveSensed {
				s, stale = st.sensed, true
				st.tickStale++
			} else {
				deliver = false
				st.tickDrop++
			}
		default:
			if factor != 1 {
				s.sli *= factor
				s.mean *= factor
				s.p99 *= factor
				s.tput *= factor
			}
		}
	}
	if deliver {
		st.winSLI = append(st.winSLI, s.sli)
		st.winMean = append(st.winMean, s.mean)
		st.winP99 = append(st.winP99, s.p99)
		st.winThroughput = append(st.winThroughput, s.tput)
		st.winOffered = append(st.winOffered, s.offered)
		st.winUsage = append(st.winUsage, s.usage)
		st.winUtil = append(st.winUtil, s.util)
		if stale {
			st.winStale++
		} else {
			st.sensed, st.haveSensed = s, true
		}
	}
	if result.Saturated {
		st.winSaturated = true
	}

	h := st.handles(c.met)
	h.latMean.Add(now, meanLat)
	h.latP99.Add(now, p99Lat)
	h.throughput.Add(now, throughput)
	h.offered.Add(now, lambda)
	h.replicas.Add(now, float64(st.obj.DesiredReplicas))
	h.ready.Add(now, float64(ready))
	for _, k := range resource.Kinds() {
		h.alloc[k].Add(now, st.obj.Alloc[k])
		h.usage[k].Add(now, result.Usage[k])
	}
	violated := 0.0
	if st.tracker.PLO().Violated(sli) {
		st.violationsCounter(c.met).Inc()
		violated = 1
	}
	if isViolated := violated == 1; isViolated != st.wasViolated {
		st.wasViolated = isViolated
		if c.tracer.Enabled() {
			verb := obs.VerbClear
			if isViolated {
				verb = obs.VerbOnset
			}
			st.traceEv = obs.Event{
				At: now, Kind: obs.KindPLO, Verb: verb, App: spec.Name,
				SLI: sli, Objective: spec.PLO.Target, PerfErr: spec.PLO.Error(sli),
			}
			st.traceSet = true
		}
	}
	h.sli.Add(now, sli)
	h.violation.Add(now, violated)
	h.burnRate.Add(now, st.tracker.Burn().BurnRate())
	if sli > 0 {
		st.histogram(c.met).Observe(sli)
	}
}

// flushApps applies P2's staged side effects at the barrier, walking
// appList in name order — the same order the serial loop visits apps —
// so registry version numbers, trace events and fault tallies come out
// identical to the single-engine path. PLO trace events are collected
// in that walk and recorded in one batch at the end: the registry
// updates between them emit no trace events of their own (the watch
// mirror skips Modified), so the recorded sequence matches the
// interleaved serial one.
func (c *Cluster) flushApps() {
	chaosOn := c.chaos != nil
	c.traceBuf = c.traceBuf[:0]
	for _, st := range c.appList {
		if len(st.updBuf) > 0 {
			c.applyUpdates(st.updBuf)
			st.updBuf = st.updBuf[:0]
		}
		if st.traceSet {
			c.traceBuf = append(c.traceBuf, st.traceEv)
			st.traceSet = false
		}
		c.lastTick.SamplesDropped += st.tickDrop
		c.lastTick.SamplesStale += st.tickStale
		st.tickDrop, st.tickStale = 0, 0
		if chaosOn {
			c.chaos.Absorb(st.chaosStats)
			st.chaosStats = chaos.Stats{}
		}
	}
	if len(c.traceBuf) > 0 {
		c.tracer.RecordBatch(c.traceBuf)
		c.traceBuf = c.traceBuf[:0]
	}
}

// flushNodes commits P3's results serially: node registry updates in
// nodeList order (one batch, same version trajectory as per-node
// updates) and the float totals for the cluster series, accumulated in
// nodeList order so the sums are bit-identical to the serial loop's.
func (c *Cluster) flushNodes(now time.Duration) {
	var capTotal, allocTotal, usageTotal resource.Vector
	emptyNodes := 0
	c.nodeUpd = c.nodeUpd[:0]
	for _, n := range c.nodeList {
		c.nodeUpd = append(c.nodeUpd, n)
		if !n.Ready {
			continue
		}
		if n.running == 0 {
			emptyNodes++
		}
		capTotal = capTotal.Add(n.Allocatable)
		allocTotal = allocTotal.Add(n.Allocated)
		usageTotal = usageTotal.Add(n.Usage)
	}
	c.applyUpdates(c.nodeUpd)
	allocFrac := allocTotal.Div(capTotal)
	usageFrac := usageTotal.Div(capTotal)
	ch := c.clusterSeries()
	for _, k := range resource.Kinds() {
		ch.allocated[k].Add(now, allocFrac[k])
		ch.usage[k].Add(now, usageFrac[k])
	}
	ch.pods.Add(now, float64(len(c.pods)))
	ch.pending.Add(now, float64(len(c.pending)))
	ch.emptyNodes.Add(now, float64(emptyNodes))
}
