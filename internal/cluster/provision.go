package cluster

import (
	"fmt"
	"sort"

	"evolve/internal/registry"
	"evolve/internal/resource"
	"evolve/internal/sim"
)

// Bulk provisioning.
//
// The incremental mutation paths (AddNode, CreateService + scheduling)
// keep every index sorted per insert — exactly right for the steady
// state, quadratic when standing up a 100k-node, million-pod topology
// before the clock starts. ProvisionBulk is the setup-time alternative:
// append everything, sort each index once, and bring service replicas
// up already bound — round-robin over the ready nodes from a stable
// per-service offset — so no scheduling round has to place a million
// pods one by one. The resulting indexes satisfy the same invariants as
// the incremental paths (index.go); index_test.go's checker does not
// care how they were built.

// Provision describes a topology to stand up in one pass: a block of
// identical nodes plus services whose replicas come up already placed
// and serving.
type Provision struct {
	// NodePrefix/Nodes/NodeCapacity add Nodes identical nodes named
	// prefix-0..prefix-N-1 (Nodes may be 0 to reuse existing topology).
	NodePrefix   string
	Nodes        int
	NodeCapacity resource.Vector
	// Services are deployed with InitialReplicas replicas each, bound
	// round-robin over the ready nodes starting at a stable per-service
	// offset. Replicas that fit nowhere stay pending.
	Services []ServiceSpec
}

// ProvisionBulk stands the topology up before the simulation starts.
// Setup-time only: it refuses to run once Start has armed the tick.
// Unlike the incremental paths it journals no per-object events; with an
// enabled tracer the registry watch still mirrors every Added object.
func (c *Cluster) ProvisionBulk(p Provision) error {
	if c.started {
		return fmt.Errorf("cluster: ProvisionBulk after Start")
	}
	if p.Nodes > 0 && (!p.NodeCapacity.NonNegative() || p.NodeCapacity.IsZero()) {
		return fmt.Errorf("cluster: ProvisionBulk node capacity %v invalid", p.NodeCapacity)
	}
	for _, spec := range p.Services {
		if err := spec.Validate(); err != nil {
			return err
		}
		if _, ok := c.apps[spec.Name]; ok {
			return fmt.Errorf("cluster: service %s already exists", spec.Name)
		}
	}

	// Nodes: append, sort once, rebuild the shard partitions in order.
	//
	// The per-tick phase loops walk each shard's nodes in name order, so
	// the batch is laid out shard-major (name order within each shard) in
	// one backing array, and dense hot-state slots are assigned in the
	// same order: every shard's P1/P3 pass then streams a contiguous
	// block of both the NodeObject heap and hot.slow instead of striding
	// hash-scattered entries across the whole topology — at 8 shards over
	// 100k nodes the strided walk re-touches nearly every cache line once
	// per shard per tick. Creation order, indexes and registry versions
	// are unchanged: layout is pure storage placement, invisible to
	// replay.
	if p.Nodes > 0 {
		names := make([]string, p.Nodes)
		for i := range names {
			names[i] = fmt.Sprintf("%s-%d", p.NodePrefix, i)
			if _, ok := c.nodes[names[i]]; ok {
				return fmt.Errorf("cluster: node %s already exists", names[i])
			}
		}
		pos := provisionLayout(names, len(c.shards))
		backing := make([]NodeObject, p.Nodes)
		slotBase := 0
		if c.hot != nil {
			slotBase = len(c.hot.slow)
			for i := 0; i < p.Nodes; i++ {
				c.hot.slow = append(c.hot.slow, 1)
			}
		}
		for i := 0; i < p.Nodes; i++ {
			n := &backing[pos[i]]
			*n = NodeObject{
				Meta:        registry.Meta{Kind: KindNode, Name: names[i]},
				Capacity:    p.NodeCapacity,
				Allocatable: p.NodeCapacity.Scale(0.94),
				Ready:       true,
			}
			if c.hot != nil {
				n.slot = int32(slotBase + pos[i])
			}
			if err := c.store.Create(n); err != nil {
				return err
			}
			c.nodes[names[i]] = n
			c.nodeList = append(c.nodeList, n)
		}
		sort.Slice(c.nodeList, func(i, j int) bool { return c.nodeList[i].Name < c.nodeList[j].Name })
		c.reshardNodes()
	}

	ready := make([]*NodeObject, 0, len(c.nodeList))
	for _, n := range c.nodeList {
		if n.Ready {
			ready = append(ready, n)
		}
	}

	now := c.now()
	touchedNodes := make(map[string]struct{})
	var placed, unplaced uint64
	for _, spec := range p.Services {
		obj := &AppObject{
			Meta:            registry.Meta{Kind: KindApp, Name: spec.Name},
			Spec:            spec,
			DesiredReplicas: spec.InitialReplicas,
			Alloc:           spec.InitialAlloc,
		}
		if err := c.store.Create(obj); err != nil {
			return err
		}
		st := c.newAppState(obj)
		c.apps[spec.Name] = st
		c.appList = append(c.appList, st)
		c.hotAddApp(st)

		// Stable start offset: each service begins its round-robin at a
		// hash of its own name, so placement spreads services across the
		// fleet and never depends on deployment order.
		cursor := 0
		if len(ready) > 0 {
			cursor = sim.ShardOf("place/"+spec.Name, len(ready))
		}
		for i := 0; i < spec.InitialReplicas; i++ {
			pod := &PodObject{
				Meta:      registry.Meta{Kind: KindPod, Name: c.nextPodName(spec.Name)},
				App:       spec.Name,
				Phase:     Pending,
				Requests:  obj.Alloc,
				Priority:  spec.Priority,
				CreatedAt: now,
			}
			if n := nextFit(ready, cursor, pod.Requests); n != nil {
				pod.Phase = Running
				pod.Node = n.Name
				pod.BoundAt = now
				pod.ReadyAt = now // provisioned replicas come up serving
				n.Allocated = n.Allocated.Add(pod.Requests)
				touchedNodes[n.Name] = struct{}{}
				placed++
			} else {
				unplaced++
			}
			cursor++
			if err := c.store.Create(pod); err != nil {
				return err
			}
			c.pods[pod.Name] = pod
			c.byName = append(c.byName, pod)
			c.byApp[spec.Name] = append(c.byApp[spec.Name], pod)
			if pod.Node != "" {
				c.byNode[pod.Node] = append(c.byNode[pod.Node], pod)
			} else {
				c.pending = append(c.pending, pod)
			}
		}
		sort.Slice(c.byApp[spec.Name], func(i, j int) bool {
			s := c.byApp[spec.Name]
			return byCreationLess(s[i], s[j])
		})
	}

	// One sort per index restores the invariants of index.go.
	if len(p.Services) > 0 {
		sort.Slice(c.appList, func(i, j int) bool { return c.appList[i].obj.Spec.Name < c.appList[j].obj.Spec.Name })
		c.reshardApps()
		sort.Slice(c.byName, func(i, j int) bool { return byNameLess(c.byName[i], c.byName[j]) })
		sort.Slice(c.pending, func(i, j int) bool { return pendingLess(c.pending[i], c.pending[j]) })
		for name := range touchedNodes {
			s := c.byNode[name]
			sort.Slice(s, func(i, j int) bool { return byNameLess(s[i], s[j]) })
		}
	}
	c.met.Counter("provision/pods").Add(placed)
	c.met.Counter("provision/unplaced").Add(unplaced)
	return nil
}

// nextFit returns the first ready node at or after cursor (wrapping)
// with headroom for req, or nil when none fits.
func nextFit(ready []*NodeObject, cursor int, req resource.Vector) *NodeObject {
	for k := 0; k < len(ready); k++ {
		n := ready[(cursor+k)%len(ready)]
		if fits(req, n.Free()) {
			return n
		}
	}
	return nil
}

func fits(req, free resource.Vector) bool {
	for _, k := range resource.Kinds() {
		if req[k] > free[k] {
			return false
		}
	}
	return true
}

// provisionLayout returns each node's position in a shard-major layout:
// shard 0's nodes first (in name order, matching the phase loops), then
// shard 1's, and so on. With nshards <= 1 the layout is plain name
// order — the serial tick's nodeList walk.
func provisionLayout(names []string, nshards int) []int {
	order := make([]int, len(names))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return names[order[a]] < names[order[b]] })
	pos := make([]int, len(names))
	if nshards <= 1 {
		for k, i := range order {
			pos[i] = k
		}
		return pos
	}
	buckets := make([][]int, nshards)
	for _, i := range order {
		s := shardOfNode(names[i], nshards)
		buckets[s] = append(buckets[s], i)
	}
	k := 0
	for _, b := range buckets {
		for _, i := range b {
			pos[i] = k
			k++
		}
	}
	return pos
}

// reshardNodes rebuilds every shard's node partition from the sorted
// nodeList; appending in list order keeps each partition sorted.
func (c *Cluster) reshardNodes() {
	if c.shards == nil {
		return
	}
	for _, sh := range c.shards {
		sh.nodes = sh.nodes[:0]
	}
	for _, n := range c.nodeList {
		sh := c.shards[shardOfNode(n.Name, len(c.shards))]
		sh.nodes = append(sh.nodes, n)
	}
}

// reshardApps rebuilds every shard's app partition from the sorted
// appList.
func (c *Cluster) reshardApps() {
	if c.shards == nil {
		return
	}
	for _, sh := range c.shards {
		sh.apps = sh.apps[:0]
	}
	for _, st := range c.appList {
		sh := c.shards[shardOfApp(st.obj.Spec.Name, len(c.shards))]
		sh.apps = append(sh.apps, st)
	}
}
