package cluster

import (
	"fmt"
	"testing"
	"time"

	"evolve/internal/control"
	"evolve/internal/resource"
	"evolve/internal/sim"
)

// checkInvariants asserts the accounting laws that must hold after any
// sequence of operations:
//  1. node.Allocated equals the sum of its hosted pods' requests,
//  2. node.Allocated never exceeds node.Allocatable,
//  3. no running pod sits on an unready or unknown node,
//  4. every pod in the map is also in the registry and vice versa.
func checkInvariants(t *testing.T, c *Cluster, step int) {
	t.Helper()
	sum := make(map[string]resource.Vector)
	for _, p := range c.Pods() {
		switch p.Phase {
		case Running:
			n, ok := c.nodes[p.Node]
			if !ok {
				t.Fatalf("step %d: pod %s on unknown node %q", step, p.Name, p.Node)
			}
			if !n.Ready {
				t.Fatalf("step %d: pod %s on unready node %s", step, p.Name, p.Node)
			}
			sum[p.Node] = sum[p.Node].Add(p.Requests)
		case Pending:
			if p.Node != "" {
				t.Fatalf("step %d: pending pod %s claims node %q", step, p.Name, p.Node)
			}
		}
		if _, err := c.store.Get(KindPod, p.Name); err != nil {
			t.Fatalf("step %d: pod %s missing from registry: %v", step, p.Name, err)
		}
	}
	for name, n := range c.nodes {
		want := sum[name]
		for _, k := range resource.Kinds() {
			tol := 1e-9 * (1 + want[k]) // relative: sums accumulate ULPs
			if diff := n.Allocated[k] - want[k]; diff > tol || diff < -tol {
				t.Fatalf("step %d: node %s allocated[%v] = %v, pods sum to %v",
					step, name, k, n.Allocated[k], want[k])
			}
			if n.Allocated[k] > n.Allocatable[k]*(1+1e-9) {
				t.Fatalf("step %d: node %s over-allocated on %v: %v > %v",
					step, name, k, n.Allocated[k], n.Allocatable[k])
			}
		}
	}
}

// TestInvariantsUnderRandomOperations drives the cluster through long
// random sequences of every mutating operation — decisions, task
// submissions, gangs, node failures/restores, kills — and checks the
// accounting invariants after each step. Three seeds, several hundred
// operations each.
func TestInvariantsUnderRandomOperations(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			eng := sim.NewEngine(seed)
			rng := sim.NewRNG(seed + 100)
			cfg := DefaultConfig()
			c := New(eng, cfg)
			if err := c.AddNodes("n", 4, resource.New(16000, 64<<30, 1e9, 2e9)); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				spec := testService(fmt.Sprintf("svc%d", i))
				if err := c.CreateService(spec); err != nil {
					t.Fatal(err)
				}
				if err := c.SetLoadFunc(spec.Name, func(time.Duration) float64 { return 100 }); err != nil {
					t.Fatal(err)
				}
			}
			c.Start()

			taskSeq := 0
			for step := 0; step < 400; step++ {
				switch rng.Intn(8) {
				case 0, 1: // random decision on a random service
					app := fmt.Sprintf("svc%d", rng.Intn(3))
					d := control.Decision{
						Replicas: 1 + rng.Intn(5),
						Alloc: resource.New(
							rng.Uniform(100, 6000),
							rng.Uniform(128<<20, 8<<30),
							rng.Uniform(1e6, 100e6),
							rng.Uniform(1e6, 100e6),
						),
					}
					if err := c.ApplyDecision(app, d); err != nil {
						t.Fatal(err)
					}
				case 2: // submit a task
					taskSeq++
					task := testTask(fmt.Sprintf("task%d", taskSeq), 1000+float64(rng.Intn(4000)), 20000)
					if err := c.SubmitTask(task); err != nil {
						t.Fatal(err)
					}
				case 3: // try a gang (may legitimately fail to fit)
					taskSeq++
					var gang []TaskSpec
					for r := 0; r < 2+rng.Intn(3); r++ {
						gang = append(gang, testTask(fmt.Sprintf("gang%d-%d", taskSeq, r), 4000, 40000))
					}
					_ = c.SubmitGang(gang)
				case 4: // fail a random node
					_ = c.FailNode(fmt.Sprintf("n-%d", rng.Intn(4)))
				case 5: // restore a random node
					_ = c.RestoreNode(fmt.Sprintf("n-%d", rng.Intn(4)))
				case 6: // kill a random task if any exists
					for _, p := range c.Pods() {
						if p.IsTask() {
							_ = c.KillTask(p.Name)
							break
						}
					}
				case 7: // let time pass (ticks, completions)
					eng.Run(eng.Now() + time.Duration(1+rng.Intn(30))*time.Second)
				}
				checkInvariants(t, c, step)
			}
			// Ensure at least one node is up, then drain: time passes,
			// tasks finish, and the invariants must still hold.
			_ = c.RestoreNode("n-0")
			eng.Run(eng.Now() + time.Hour)
			checkInvariants(t, c, 401)
		})
	}
}

// TestObservationInvariants checks observation sanity over a live run:
// utilisation non-negative, ready <= desired replicas, interval sums to
// elapsed time.
func TestObservationInvariants(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.CreateService(testService("web")); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoadFunc("web", func(now time.Duration) float64 {
		return 100 + 100*now.Hours()
	}); err != nil {
		t.Fatal(err)
	}
	c.Start()
	var total time.Duration
	for i := 0; i < 20; i++ {
		c.Engine().Run(c.Engine().Now() + 15*time.Second)
		obs, err := c.Observe("web")
		if err != nil {
			t.Fatal(err)
		}
		total += obs.Interval
		if obs.ReadyReplicas > obs.Replicas {
			t.Fatalf("ready %d > desired %d", obs.ReadyReplicas, obs.Replicas)
		}
		if !obs.Usage.NonNegative() || !obs.Utilisation.NonNegative() {
			t.Fatalf("negative usage/util: %v %v", obs.Usage, obs.Utilisation)
		}
		if obs.OfferedLoad < 0 || obs.Throughput < 0 {
			t.Fatalf("negative rates: %v %v", obs.OfferedLoad, obs.Throughput)
		}
	}
	if total != 20*15*time.Second {
		t.Errorf("intervals sum to %v", total)
	}
}
