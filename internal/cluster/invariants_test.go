package cluster

import (
	"fmt"
	"testing"
	"time"

	"evolve/internal/control"
	"evolve/internal/resource"
	"evolve/internal/sim"
)

// checkInvariants asserts the accounting laws that must hold after any
// sequence of operations:
//  1. node.Allocated equals the sum of its hosted pods' requests,
//  2. node.Allocated never exceeds node.Allocatable,
//  3. no running pod sits on an unready or unknown node,
//  4. every pod in the map is also in the registry and vice versa.
func checkInvariants(t *testing.T, c *Cluster, step int) {
	t.Helper()
	sum := make(map[string]resource.Vector)
	for _, p := range c.Pods() {
		switch p.Phase {
		case Running:
			n, ok := c.nodes[p.Node]
			if !ok {
				t.Fatalf("step %d: pod %s on unknown node %q", step, p.Name, p.Node)
			}
			if !n.Ready {
				t.Fatalf("step %d: pod %s on unready node %s", step, p.Name, p.Node)
			}
			sum[p.Node] = sum[p.Node].Add(p.Requests)
		case Pending:
			if p.Node != "" {
				t.Fatalf("step %d: pending pod %s claims node %q", step, p.Name, p.Node)
			}
		}
		if _, err := c.store.Get(KindPod, p.Name); err != nil {
			t.Fatalf("step %d: pod %s missing from registry: %v", step, p.Name, err)
		}
	}
	for name, n := range c.nodes {
		want := sum[name]
		for _, k := range resource.Kinds() {
			tol := 1e-9 * (1 + want[k]) // relative: sums accumulate ULPs
			if diff := n.Allocated[k] - want[k]; diff > tol || diff < -tol {
				t.Fatalf("step %d: node %s allocated[%v] = %v, pods sum to %v",
					step, name, k, n.Allocated[k], want[k])
			}
			if n.Allocated[k] > n.Allocatable[k]*(1+1e-9) {
				t.Fatalf("step %d: node %s over-allocated on %v: %v > %v",
					step, name, k, n.Allocated[k], n.Allocatable[k])
			}
		}
	}
}

// TestInvariantsUnderRandomOperations drives the cluster through long
// random sequences of every mutating operation — decisions, task
// submissions, gangs, node failures/restores, kills — and checks the
// accounting invariants after each step. Three seeds, several hundred
// operations each.
func TestInvariantsUnderRandomOperations(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			eng := sim.NewEngine(seed)
			rng := sim.NewRNG(seed + 100)
			cfg := DefaultConfig()
			c := New(eng, cfg)
			if err := c.AddNodes("n", 4, resource.New(16000, 64<<30, 1e9, 2e9)); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				spec := testService(fmt.Sprintf("svc%d", i))
				if err := c.CreateService(spec); err != nil {
					t.Fatal(err)
				}
				if err := c.SetLoadFunc(spec.Name, func(time.Duration) float64 { return 100 }); err != nil {
					t.Fatal(err)
				}
			}
			c.Start()

			taskSeq := 0
			for step := 0; step < 400; step++ {
				switch rng.Intn(8) {
				case 0, 1: // random decision on a random service
					app := fmt.Sprintf("svc%d", rng.Intn(3))
					d := control.Decision{
						Replicas: 1 + rng.Intn(5),
						Alloc: resource.New(
							rng.Uniform(100, 6000),
							rng.Uniform(128<<20, 8<<30),
							rng.Uniform(1e6, 100e6),
							rng.Uniform(1e6, 100e6),
						),
					}
					if err := c.ApplyDecision(app, d); err != nil {
						t.Fatal(err)
					}
				case 2: // submit a task
					taskSeq++
					task := testTask(fmt.Sprintf("task%d", taskSeq), 1000+float64(rng.Intn(4000)), 20000)
					if err := c.SubmitTask(task); err != nil {
						t.Fatal(err)
					}
				case 3: // try a gang (may legitimately fail to fit)
					taskSeq++
					var gang []TaskSpec
					for r := 0; r < 2+rng.Intn(3); r++ {
						gang = append(gang, testTask(fmt.Sprintf("gang%d-%d", taskSeq, r), 4000, 40000))
					}
					_ = c.SubmitGang(gang)
				case 4: // fail a random node
					_ = c.FailNode(fmt.Sprintf("n-%d", rng.Intn(4)))
				case 5: // restore a random node
					_ = c.RestoreNode(fmt.Sprintf("n-%d", rng.Intn(4)))
				case 6: // kill a random task if any exists
					for _, p := range c.Pods() {
						if p.IsTask() {
							_ = c.KillTask(p.Name)
							break
						}
					}
				case 7: // let time pass (ticks, completions)
					eng.Run(eng.Now() + time.Duration(1+rng.Intn(30))*time.Second)
				}
				checkInvariants(t, c, step)
			}
			// Ensure at least one node is up, then drain: time passes,
			// tasks finish, and the invariants must still hold.
			_ = c.RestoreNode("n-0")
			eng.Run(eng.Now() + time.Hour)
			checkInvariants(t, c, 401)
		})
	}
}

// TestFailScheduleRestoreChurn hammers the fail→schedule→restore cycle:
// a node dies, its replicas re-place the same tick, the node returns, a
// decision rebalances — hundreds of times, with the invariants checked
// at every stage. This is the regression net for the snapshot-drain and
// bind-fault paths.
func TestFailScheduleRestoreChurn(t *testing.T) {
	eng := sim.NewEngine(11)
	cfg := DefaultConfig()
	cfg.MeasurementNoise = 0
	c := New(eng, cfg)
	if err := c.AddNodes("n", 3, resource.New(16000, 64<<30, 1e9, 2e9)); err != nil {
		t.Fatal(err)
	}
	spec := testService("web")
	spec.InitialReplicas = 4
	if err := c.CreateService(spec); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoadFunc("web", func(time.Duration) float64 { return 100 }); err != nil {
		t.Fatal(err)
	}
	c.Start()
	eng.Run(10 * time.Second)

	rng := sim.NewRNG(12)
	for round := 0; round < 200; round++ {
		victim := fmt.Sprintf("n-%d", rng.Intn(3))
		if err := c.FailNode(victim); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, c, round*10)
		// Same-tick reschedule: the dead node must never be picked.
		c.SchedulePendingNow()
		for _, p := range c.Pods() {
			if p.Phase == Running && p.Node == victim {
				t.Fatalf("round %d: pod %s re-bound to failed node %s", round, p.Name, victim)
			}
		}
		checkInvariants(t, c, round*10+1)
		if err := c.RestoreNode(victim); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, c, round*10+2)
		if round%3 == 0 {
			d := control.Decision{
				Replicas: 2 + rng.Intn(5),
				Alloc:    resource.New(rng.Uniform(500, 4000), 1<<30, 10e6, 10e6),
			}
			if err := c.ApplyDecision("web", d); err != nil {
				t.Fatal(err)
			}
			checkInvariants(t, c, round*10+3)
		}
		eng.Run(eng.Now() + time.Duration(1+rng.Intn(10))*time.Second)
		checkInvariants(t, c, round*10+4)
	}
	// No replica may have leaked: desired vs live pods reconcile.
	app, err := c.App("web")
	if err != nil {
		t.Fatal(err)
	}
	if live := len(c.appPods("web")); live != app.DesiredReplicas {
		t.Errorf("live replicas %d != desired %d after churn", live, app.DesiredReplicas)
	}
}

// TestEvictPreemptUnderNodeFailure drives randomized fault sequences
// against a mixed workload where a high-priority service preempts
// low-priority tasks, while nodes keep failing and recovering. Every
// step re-checks the accounting invariants; preemption against a
// half-dead topology is where stale-snapshot bugs live.
func TestEvictPreemptUnderNodeFailure(t *testing.T) {
	for seed := int64(21); seed <= 23; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			eng := sim.NewEngine(seed)
			rng := sim.NewRNG(seed + 7)
			cfg := DefaultConfig()
			c := New(eng, cfg)
			// Small nodes: preemption pressure is constant.
			if err := c.AddNodes("n", 3, resource.New(8000, 32<<30, 1e9, 2e9)); err != nil {
				t.Fatal(err)
			}
			hi := testService("critical")
			hi.Priority = 1000
			if err := c.CreateService(hi); err != nil {
				t.Fatal(err)
			}
			if err := c.SetLoadFunc("critical", func(time.Duration) float64 { return 150 }); err != nil {
				t.Fatal(err)
			}
			c.Start()

			taskSeq := 0
			for step := 0; step < 300; step++ {
				switch rng.Intn(6) {
				case 0: // flood low-priority tasks to fill nodes
					for i := 0; i < 3; i++ {
						taskSeq++
						task := testTask(fmt.Sprintf("filler%d", taskSeq), 3000, 60000)
						task.Priority = 0
						if err := c.SubmitTask(task); err != nil {
							t.Fatal(err)
						}
					}
				case 1: // scale the critical service: forces preemption
					d := control.Decision{
						Replicas: 2 + rng.Intn(6),
						Alloc:    resource.New(rng.Uniform(1000, 4000), 2<<30, 10e6, 10e6),
					}
					if err := c.ApplyDecision("critical", d); err != nil {
						t.Fatal(err)
					}
				case 2: // node failure mid-flight
					_ = c.FailNode(fmt.Sprintf("n-%d", rng.Intn(3)))
				case 3: // sometimes a second concurrent failure
					_ = c.FailNode(fmt.Sprintf("n-%d", rng.Intn(3)))
					if rng.Intn(2) == 0 {
						_ = c.RestoreNode(fmt.Sprintf("n-%d", rng.Intn(3)))
					}
				case 4: // recovery
					_ = c.RestoreNode(fmt.Sprintf("n-%d", rng.Intn(3)))
				case 5: // time passes; ticks schedule and preempt
					eng.Run(eng.Now() + time.Duration(1+rng.Intn(20))*time.Second)
				}
				checkInvariants(t, c, step)
			}
			for i := 0; i < 3; i++ {
				_ = c.RestoreNode(fmt.Sprintf("n-%d", i))
			}
			eng.Run(eng.Now() + time.Hour)
			checkInvariants(t, c, 301)
		})
	}
}

// TestObservationInvariants checks observation sanity over a live run:
// utilisation non-negative, ready <= desired replicas, interval sums to
// elapsed time.
func TestObservationInvariants(t *testing.T) {
	c := newTestCluster(t, 3)
	if err := c.CreateService(testService("web")); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoadFunc("web", func(now time.Duration) float64 {
		return 100 + 100*now.Hours()
	}); err != nil {
		t.Fatal(err)
	}
	c.Start()
	var total time.Duration
	for i := 0; i < 20; i++ {
		c.Engine().Run(c.Engine().Now() + 15*time.Second)
		obs, err := c.Observe("web")
		if err != nil {
			t.Fatal(err)
		}
		total += obs.Interval
		if obs.ReadyReplicas > obs.Replicas {
			t.Fatalf("ready %d > desired %d", obs.ReadyReplicas, obs.Replicas)
		}
		if !obs.Usage.NonNegative() || !obs.Utilisation.NonNegative() {
			t.Fatalf("negative usage/util: %v %v", obs.Usage, obs.Utilisation)
		}
		if obs.OfferedLoad < 0 || obs.Throughput < 0 {
			t.Fatalf("negative rates: %v %v", obs.OfferedLoad, obs.Throughput)
		}
	}
	if total != 20*15*time.Second {
		t.Errorf("intervals sum to %v", total)
	}
}
