package cluster

import (
	"fmt"
	"time"
)

// Event is one line of the cluster's operational journal — the
// "kubectl get events" analogue. Events record the control plane's
// actions (placements, evictions, migrations, failures), not telemetry.
type Event struct {
	At      time.Duration
	Kind    string // e.g. "pod-scheduled", "pod-evicted", "node-failed"
	Object  string // the pod or node concerned
	Message string
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("%8.1fs %-16s %-24s %s", e.At.Seconds(), e.Kind, e.Object, e.Message)
}

// eventLog is a fixed-capacity ring; old events are dropped once full.
type eventLog struct {
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
}

const eventLogCapacity = 2048

func (l *eventLog) add(e Event) {
	if l.buf == nil {
		l.buf = make([]Event, eventLogCapacity)
	}
	if l.wrapped {
		l.dropped++
	}
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.wrapped = true
	}
}

// snapshot returns events oldest-first.
func (l *eventLog) snapshot() []Event {
	if l.buf == nil {
		return nil
	}
	if !l.wrapped {
		out := make([]Event, l.next)
		copy(out, l.buf[:l.next])
		return out
	}
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// recordEvent appends to the journal.
func (c *Cluster) recordEvent(kind, object, format string, args ...interface{}) {
	c.events.add(Event{
		At:      c.now(),
		Kind:    kind,
		Object:  object,
		Message: fmt.Sprintf(format, args...),
	})
}

// RecordEvent lets control-plane components outside the cluster (the
// autoscaler driver, experiment hooks) write to the same journal.
func (c *Cluster) RecordEvent(kind, object, message string) {
	c.recordEvent(kind, object, "%s", message)
}

// Events returns the journal oldest-first (bounded: the last ~2k events).
func (c *Cluster) Events() []Event { return c.events.snapshot() }

// EventsDropped reports how many old events the ring has discarded.
func (c *Cluster) EventsDropped() uint64 { return c.events.dropped }
