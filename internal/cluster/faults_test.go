package cluster

import (
	"strings"
	"testing"
	"time"

	"evolve/internal/chaos"
	"evolve/internal/control"
	"evolve/internal/obs"
	"evolve/internal/registry"
	"evolve/internal/resource"
	"evolve/internal/sched"
)

// TestRegistryFaultAbsorbed: a registry write failing behind the
// cluster's back degrades to a counted, traced fault instead of a panic;
// the in-memory state keeps working.
func TestRegistryFaultAbsorbed(t *testing.T) {
	c := newTestCluster(t, 2)
	tr := obs.New(64)
	c.SetTracer(tr)
	if err := c.CreateService(testService("web")); err != nil {
		t.Fatal(err)
	}
	c.SchedulePendingNow()

	// Delete a pod object from the registry directly; the cluster's next
	// write to it must fail and be absorbed.
	p := c.Pods()[0]
	if err := c.Store().Delete(KindPod, p.Name); err != nil {
		t.Fatal(err)
	}
	c.update(p) // would have been a panic before the fault path existed

	if got := c.Metrics().Counter("faults/registry").Value(); got != 1 {
		t.Errorf("faults/registry = %d, want 1", got)
	}
	if c.LastTick().RegistryFaults != 1 {
		t.Errorf("LastTick().RegistryFaults = %d, want 1", c.LastTick().RegistryFaults)
	}
	evs := tr.Snapshot(obs.Filter{Kind: "fault", Verb: obs.VerbFault})
	if len(evs) != 1 || !strings.Contains(evs[0].Object, p.Name) {
		t.Errorf("fault trace events = %+v, want one naming %s", evs, p.Name)
	}
	// The substrate still operates: a decision applies cleanly.
	if err := c.ApplyDecision("web", control.Decision{Replicas: 3, Alloc: resource.New(1000, 1<<30, 5e6, 5e6)}); err != nil {
		t.Fatalf("ApplyDecision after registry fault: %v", err)
	}
}

// TestGangRollbackOnCommitFailure: a gang whose commit fails partway
// (here: a name collision in the registry on the second rank) is rolled
// back completely — no ranks, no allocation, invariants intact.
func TestGangRollbackOnCommitFailure(t *testing.T) {
	c := newTestCluster(t, 2)
	// Occupy the second rank's registry slot behind the cluster's back.
	squatter := &PodObject{Meta: registry.Meta{Kind: KindPod, Name: "g-1"}}
	if err := c.Store().Create(squatter); err != nil {
		t.Fatal(err)
	}
	gang := []TaskSpec{
		testTask("g-0", 1000, 20000),
		testTask("g-1", 1000, 20000),
	}
	err := c.SubmitGang(gang)
	if err == nil {
		t.Fatal("gang commit with a registry collision succeeded")
	}
	if len(c.Pods()) != 0 {
		t.Errorf("rollback left %d pods", len(c.Pods()))
	}
	for _, n := range c.Nodes() {
		if !n.Allocated.IsZero() {
			t.Errorf("rollback left allocation %v on %s", n.Allocated, n.Name)
		}
	}
	if got := c.Metrics().Counter("faults/gang-rollback").Value(); got != 1 {
		t.Errorf("faults/gang-rollback = %d, want 1", got)
	}
	checkInvariants(t, c, 0)
}

// chaosCluster builds a started single-service cluster with the given
// chaos plan installed.
func chaosCluster(t *testing.T, spec string) *Cluster {
	t.Helper()
	c := newTestCluster(t, 3)
	if err := c.CreateService(testService("web")); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoadFunc("web", func(time.Duration) float64 { return 200 }); err != nil {
		t.Fatal(err)
	}
	plan, err := chaos.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.NewInjector(plan, 1)
	c.SetChaos(inj)
	inj.Arm(c.Engine(), c)
	c.Start()
	return c
}

// TestChaosActuationReject: a rejected actuation surfaces as a transient
// error the retry ladder recognises, and changes nothing.
func TestChaosActuationReject(t *testing.T) {
	c := chaosCluster(t, "act-reject@0")
	c.Engine().Run(10 * time.Second)
	before, _ := c.App("web")
	wantReplicas := before.DesiredReplicas
	err := c.ApplyDecision("web", control.Decision{Replicas: 5, Alloc: resource.New(1000, 1<<30, 5e6, 5e6)})
	if err == nil {
		t.Fatal("rejected actuation returned nil")
	}
	if !control.IsTransient(err) {
		t.Fatalf("injected rejection %v is not transient", err)
	}
	after, _ := c.App("web")
	if after.DesiredReplicas != wantReplicas {
		t.Errorf("rejected actuation still changed replicas: %d → %d", wantReplicas, after.DesiredReplicas)
	}
	if got := c.Metrics().Counter("chaos/act-rejected").Value(); got == 0 {
		t.Error("chaos/act-rejected not counted")
	}
}

// TestChaosActuationDelay: a delayed actuation lands after the injected
// latency, not before.
func TestChaosActuationDelay(t *testing.T) {
	c := chaosCluster(t, "act-delay@0:delay=30s")
	c.Engine().Run(10 * time.Second)
	if err := c.ApplyDecision("web", control.Decision{Replicas: 6, Alloc: resource.New(1000, 1<<30, 5e6, 5e6)}); err != nil {
		t.Fatal(err)
	}
	mid, _ := c.App("web")
	if mid.DesiredReplicas == 6 {
		t.Error("delayed actuation applied immediately")
	}
	c.Engine().Run(45 * time.Second)
	late, _ := c.App("web")
	if late.DesiredReplicas != 6 {
		t.Errorf("delayed actuation never landed: replicas %d", late.DesiredReplicas)
	}
}

// TestChaosActuationPartial: a partial actuation moves the service a
// fraction of the way to the decision.
func TestChaosActuationPartial(t *testing.T) {
	c := chaosCluster(t, "act-partial@0:mag=0.5")
	c.Engine().Run(10 * time.Second)
	before, _ := c.App("web") // 2 replicas initially
	if err := c.ApplyDecision("web", control.Decision{Replicas: 6, Alloc: before.Alloc}); err != nil {
		t.Fatal(err)
	}
	after, _ := c.App("web")
	if after.DesiredReplicas != 4 { // 2 + (6-2)*0.5
		t.Errorf("partial actuation: replicas %d, want 4", after.DesiredReplicas)
	}
}

// TestChaosDropoutBlindsObservation: full sensor dropout produces
// observations the control layer classifies as blind, while the ground
// truth (PLO tracker, metric series) keeps recording.
func TestChaosDropoutBlindsObservation(t *testing.T) {
	c := chaosCluster(t, "metric-drop@0:p=1")
	c.Engine().Run(time.Minute)
	o, err := c.Observe("web")
	if err != nil {
		t.Fatal(err)
	}
	if o.Samples != 0 || o.ExpectedSamples != 12 {
		t.Errorf("samples = %d/%d, want 0/12 under full dropout", o.Samples, o.ExpectedSamples)
	}
	if !o.Blind() {
		t.Error("full dropout observation not blind")
	}
	if c.LastTick().SamplesDropped == 0 {
		t.Error("LastTick().SamplesDropped = 0 under full dropout")
	}
	// Ground truth is untouched: the SLI series has every tick.
	if n := len(c.Metrics().Series("app/web/sli").Samples()); n != 12 {
		t.Errorf("ground-truth sli series has %d samples, want 12", n)
	}
}

// TestChaosFreezeMarksStale: frozen sensors deliver stale substitutes
// that the observation reports as such.
func TestChaosFreezeMarksStale(t *testing.T) {
	c := chaosCluster(t, "metric-freeze@20s:p=1")
	c.Engine().Run(time.Minute)
	o, err := c.Observe("web")
	if err != nil {
		t.Fatal(err)
	}
	if o.ExpectedSamples != 12 || o.Samples != 12 {
		t.Fatalf("samples = %d/%d, want 12/12 (freeze still delivers)", o.Samples, o.ExpectedSamples)
	}
	// Ticks at 5s..60s; freeze active from 20s: 3 fresh, 9 frozen.
	if o.StaleSamples != 9 {
		t.Errorf("stale samples = %d, want 9", o.StaleSamples)
	}
	if !o.Blind() {
		// 3 fresh samples then silence: not blind on this window.
		t.Log("window still has fresh samples (expected)")
	}
	c.Engine().Run(2 * time.Minute)
	o, _ = c.Observe("web")
	if o.StaleSamples != o.Samples || !o.Blind() {
		t.Errorf("fully frozen window: %d/%d stale, blind=%v; want all stale and blind",
			o.StaleSamples, o.Samples, o.Blind())
	}
}

// TestFailNodeDrainsSchedulerSnapshot is the white-box regression for
// the mid-round drain: after FailNode, the reusable snapshot entry for
// the dead node must be emptied in place so a schedule call against the
// stale snapshot cannot pick it.
func TestFailNodeDrainsSchedulerSnapshot(t *testing.T) {
	c := newTestCluster(t, 2)
	if err := c.CreateService(testService("web")); err != nil {
		t.Fatal(err)
	}
	c.SchedulePendingNow()
	c.refreshSnapshot()
	if _, ok := c.snap.Lookup("node-0"); !ok {
		t.Fatal("node-0 missing from snapshot")
	}
	live := c.snap.Live()
	if err := c.FailNode("node-0"); err != nil {
		t.Fatal(err)
	}
	if _, still := c.snap.Lookup("node-0"); still {
		t.Error("failed node still live in snapshot")
	}
	if c.snap.Live() != live-1 {
		t.Errorf("snapshot live count %d, want %d", c.snap.Live(), live-1)
	}
	// The entry is drained in place, not removed: error totals and
	// positions stay stable.
	var drained *sched.NodeInfo
	for i := range c.snap.Nodes() {
		if c.snap.Nodes()[i].Name == "node-0" {
			drained = &c.snap.Nodes()[i]
		}
	}
	if drained == nil {
		t.Fatal("drained entry vanished from the snapshot node list")
	}
	if !drained.Allocatable.IsZero() || len(drained.Pods) != 0 {
		t.Errorf("snapshot entry not drained: %+v", drained)
	}
	if err := c.snap.CheckInvariants(); err != nil {
		t.Errorf("snapshot invariants after FailNode: %v", err)
	}
	// The evicted replicas went pending; a fresh scheduling round must
	// place them on the surviving node only.
	c.SchedulePendingNow()
	for _, p := range c.Pods() {
		if p.Phase == Running && p.Node == "node-0" {
			t.Errorf("pod %s scheduled onto failed node", p.Name)
		}
	}
	checkInvariants(t, c, 0)
}

// TestChaosNodeKillIndexConsistency: under the node-kill chaos profile
// the feasibility index never offers the failed node while it is down,
// stays internally consistent, and picks the node up again after
// restore. Extends TestFailNodeDrainsSchedulerSnapshot to the chaos
// path (extra replicas force scheduling rounds during the outage).
func TestChaosNodeKillIndexConsistency(t *testing.T) {
	c := chaosCluster(t, "node-kill")
	if err := c.ApplyDecision("web", control.Decision{Replicas: 6, Alloc: resource.New(500, 1<<30, 5e6, 5e6)}); err != nil {
		t.Fatal(err)
	}
	// Into the 30m–45m crash window: node-0 is down.
	c.Engine().Run(35 * time.Minute)
	if _, live := c.snap.Lookup("node-0"); live {
		t.Error("failed node live in the snapshot during the crash window")
	}
	if err := c.snap.CheckInvariants(); err != nil {
		t.Errorf("snapshot invariants during outage: %v", err)
	}
	for _, p := range c.Pods() {
		if p.Phase == Running && p.Node == "node-0" {
			t.Errorf("pod %s running on the failed node", p.Name)
		}
	}
	// Past the window: the node restores and rejoins the index, and the
	// next scheduling round may use it again.
	c.Engine().Run(50 * time.Minute)
	c.refreshSnapshot()
	if _, live := c.snap.Lookup("node-0"); !live {
		t.Error("restored node missing from the rebuilt snapshot")
	}
	if err := c.snap.CheckInvariants(); err != nil {
		t.Errorf("snapshot invariants after restore: %v", err)
	}
	checkInvariants(t, c, 0)
}
