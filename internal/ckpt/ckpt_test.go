package ckpt

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Begin("header")
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U64(1<<63 + 12345)
	w.I64(-42)
	w.Int(99)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.F64(0.1)
	w.Dur(90 * time.Minute)
	w.Str("hello, 世界")
	w.Bytes([]byte{0, 1, 2, 255})
	w.Begin("trailer")
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	r.Begin("header")
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.U64(); got != 1<<63+12345 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 99 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 inf = %v", got)
	}
	if got := r.F64(); got != 0.1 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Dur(); got != 90*time.Minute {
		t.Errorf("Dur = %v", got)
	}
	if got := r.Str(); got != "hello, 世界" {
		t.Errorf("Str = %q", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{0, 1, 2, 255}) {
		t.Errorf("Bytes = %v", got)
	}
	r.Begin("trailer")
	if err := r.Close(); err != nil {
		t.Fatalf("reader Close: %v", err)
	}
}

func TestSectionDrift(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Begin("alpha")
	w.U64(1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r.Begin("beta")
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "section marker") {
		t.Fatalf("want section-marker error, got %v", r.Err())
	}
}

func TestChecksumCatchesCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Begin("s")
	w.U64(0xdeadbeef)
	w.Str("payload")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-12] ^= 0x40 // flip a payload bit (not in the checksum trailer)
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	r.Begin("s")
	r.U64()
	r.Str()
	if err := r.Close(); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want checksum error, got %v", err)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("want bad-magic error")
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4]++ // bump format version
	if _, err := NewReader(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

func TestTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Str("a long enough payload to truncate meaningfully")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()-20]
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	r.Str()
	if r.Err() == nil {
		// Str may have read short; Close must then fail.
		if err := r.Close(); err == nil {
			t.Fatal("truncated stream round-tripped cleanly")
		}
	}
}
