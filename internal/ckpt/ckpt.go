// Package ckpt is the low-level codec for crash-consistent world
// checkpoints: a versioned, deterministic binary format with named
// section markers and a running checksum. It deliberately knows nothing
// about the simulation — each package serialises its own state through a
// Writer/Reader pair, and internal/ckpt/world fixes the section order.
//
// Format: a fixed magic + format version header, then a flat stream of
// little-endian primitives. Strings and byte blobs are length-prefixed.
// Begin(name) writes the section name as a marker string; the reader's
// Begin verifies it, so a skew between writer and reader fails loudly at
// the first drifted section instead of deserialising garbage. The
// trailing 64-bit FNV-1a checksum covers every byte after the header and
// catches truncated or corrupted files.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// Magic identifies an EVOLVE checkpoint stream.
const Magic = "EVCK"

// Version is the checkpoint format version; Restore rejects mismatches.
const Version uint32 = 1

// Writer serialises primitives to an underlying stream, checksumming as
// it goes. Errors are sticky: the first write error latches and every
// later call is a no-op, so callers check Close once.
type Writer struct {
	w   *bufio.Writer
	sum hash64
	err error
	buf [8]byte
}

// hash64 is the running FNV-1a state (inlined writes, no interface).
type hash64 struct{ h uint64 }

func newHash64() hash64 { return hash64{h: 14695981039346656037} }

func (s *hash64) write(p []byte) {
	h := s.h
	for _, b := range p {
		h = (h ^ uint64(b)) * 1099511628211
	}
	s.h = h
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer) *Writer {
	cw := &Writer{w: bufio.NewWriter(w), sum: newHash64()}
	if _, err := cw.w.WriteString(Magic); err != nil {
		cw.err = err
	}
	cw.writeRaw(uint64(Version), 4)
	return cw
}

func (w *Writer) writeRaw(v uint64, n int) {
	if w.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(w.buf[:], v)
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		w.err = err
	}
}

func (w *Writer) write(v uint64, n int) {
	if w.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.sum.write(w.buf[:n])
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		w.err = err
	}
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.write(uint64(v), 1) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U64 writes an unsigned 64-bit integer.
func (w *Writer) U64(v uint64) { w.write(v, 8) }

// I64 writes a signed 64-bit integer.
func (w *Writer) I64(v int64) { w.write(uint64(v), 8) }

// Int writes an int (as 64 bits).
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 writes a float64 bit-exactly.
func (w *Writer) F64(v float64) { w.write(math.Float64bits(v), 8) }

// Dur writes a time.Duration.
func (w *Writer) Dur(v time.Duration) { w.I64(int64(v)) }

// Str writes a length-prefixed string.
func (w *Writer) Str(s string) {
	w.U64(uint64(len(s)))
	if w.err != nil {
		return
	}
	w.sum.write([]byte(s))
	if _, err := w.w.WriteString(s); err != nil {
		w.err = err
	}
}

// Bytes writes a length-prefixed byte blob.
func (w *Writer) Bytes(p []byte) {
	w.U64(uint64(len(p)))
	if w.err != nil {
		return
	}
	w.sum.write(p)
	if _, err := w.w.Write(p); err != nil {
		w.err = err
	}
}

// Begin writes a named section marker; the Reader verifies it in order.
func (w *Writer) Begin(name string) { w.Str(name) }

// Err returns the latched write error, if any.
func (w *Writer) Err() error { return w.err }

// Close writes the trailing checksum and flushes. It does not close the
// underlying writer.
func (w *Writer) Close() error {
	sum := w.sum.h
	w.writeRaw(sum, 8)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader deserialises a stream written by Writer, verifying the header
// up front and the checksum via Close. Like Writer, errors latch.
type Reader struct {
	r   *bufio.Reader
	sum hash64
	err error
	buf [8]byte
}

// NewReader verifies the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	cr := &Reader{r: bufio.NewReader(r), sum: newHash64()}
	var magic [4]byte
	if _, err := io.ReadFull(cr.r, magic[:]); err != nil {
		return nil, fmt.Errorf("ckpt: reading magic: %w", err)
	}
	if string(magic[:]) != Magic {
		return nil, fmt.Errorf("ckpt: bad magic %q (not a checkpoint file)", magic[:])
	}
	if _, err := io.ReadFull(cr.r, cr.buf[:4]); err != nil {
		return nil, fmt.Errorf("ckpt: reading version: %w", err)
	}
	if v := binary.LittleEndian.Uint32(cr.buf[:4]); v != Version {
		return nil, fmt.Errorf("ckpt: format version %d (this build reads %d)", v, Version)
	}
	return cr, nil
}

func (r *Reader) read(n int) uint64 {
	if r.err != nil {
		return 0
	}
	if _, err := io.ReadFull(r.r, r.buf[:n]); err != nil {
		r.err = fmt.Errorf("ckpt: short read: %w", err)
		return 0
	}
	r.sum.write(r.buf[:n])
	for i := n; i < 8; i++ {
		r.buf[i] = 0 // only n bytes are valid; clear stale high bytes
	}
	return binary.LittleEndian.Uint64(r.buf[:])
}

// U8 reads one byte.
func (r *Reader) U8() uint8 { return uint8(r.read(1)) }

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U64 reads an unsigned 64-bit integer.
func (r *Reader) U64() uint64 { return r.read(8) }

// I64 reads a signed 64-bit integer.
func (r *Reader) I64() int64 { return int64(r.read(8)) }

// Int reads an int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.read(8)) }

// Dur reads a time.Duration.
func (r *Reader) Dur() time.Duration { return time.Duration(r.I64()) }

// maxBlob bounds length prefixes so a corrupted stream cannot force a
// multi-gigabyte allocation before the checksum check catches it.
const maxBlob = 1 << 31

// Str reads a length-prefixed string.
func (r *Reader) Str() string { return string(r.Bytes()) }

// Bytes reads a length-prefixed byte blob.
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > maxBlob {
		r.err = fmt.Errorf("ckpt: blob length %d exceeds limit", n)
		return nil
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r.r, p); err != nil {
		r.err = fmt.Errorf("ckpt: short blob read: %w", err)
		return nil
	}
	r.sum.write(p)
	return p
}

// Begin reads a section marker and verifies it matches name.
func (r *Reader) Begin(name string) {
	got := r.Str()
	if r.err == nil && got != name {
		r.err = fmt.Errorf("ckpt: section marker %q, want %q (writer/reader drift)", got, name)
	}
}

// Err returns the latched read error, if any.
func (r *Reader) Err() error { return r.err }

// Close reads and verifies the trailing checksum.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	want := r.sum.h
	if _, err := io.ReadFull(r.r, r.buf[:8]); err != nil {
		return fmt.Errorf("ckpt: reading checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint64(r.buf[:8]); got != want {
		return fmt.Errorf("ckpt: checksum mismatch (file %016x, computed %016x)", got, want)
	}
	return nil
}
