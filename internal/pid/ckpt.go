package pid

import (
	"fmt"

	"evolve/internal/ckpt"
)

// Checkpoint serialisation. Configuration is not serialised — a restore
// target is an identically-constructed controller — except for the
// fields mutated at runtime: the gains (the adaptive tuner rewrites
// them) and Multi's utilisation target (retargeted per decision).

// CkptSave writes the controller's mutable state.
func (c *Controller) CkptSave(w *ckpt.Writer) {
	g := c.cfg.Gains
	w.F64(g.Kp)
	w.F64(g.Ki)
	w.F64(g.Kd)
	w.F64(c.integral)
	w.F64(c.prevMeas)
	w.F64(c.prevDeriv)
	w.Bool(c.havePrev)
	w.F64(c.lastOutput)
	w.F64(c.lastErr)
	saveTerm(w, c.lastTerm)
}

// CkptLoad restores the controller's mutable state.
func (c *Controller) CkptLoad(r *ckpt.Reader) error {
	c.cfg.Gains.Kp = r.F64()
	c.cfg.Gains.Ki = r.F64()
	c.cfg.Gains.Kd = r.F64()
	c.integral = r.F64()
	c.prevMeas = r.F64()
	c.prevDeriv = r.F64()
	c.havePrev = r.Bool()
	c.lastOutput = r.F64()
	c.lastErr = r.F64()
	c.lastTerm = loadTerm(r)
	return r.Err()
}

func saveTerm(w *ckpt.Writer, t Term) {
	w.F64(t.Err)
	w.F64(t.P)
	w.F64(t.I)
	w.F64(t.D)
	w.F64(t.Out)
	w.Bool(t.Clamped)
}

func loadTerm(r *ckpt.Reader) Term {
	return Term{Err: r.F64(), P: r.F64(), I: r.F64(), D: r.F64(), Out: r.F64(), Clamped: r.Bool()}
}

// CkptSave writes the tuner's mutable state (the gain ratios are fixed
// at construction and not serialised).
func (t *Tuner) CkptSave(w *ckpt.Writer) {
	w.Int(len(t.errs))
	for _, e := range t.errs {
		w.F64(e)
	}
	w.Int(t.sincTune)
	w.Int(t.adapts)
}

// CkptLoad restores the tuner's mutable state.
func (t *Tuner) CkptLoad(r *ckpt.Reader) error {
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if n < 0 || n > 1<<20 {
		return fmt.Errorf("pid: ckpt: tuner window length %d out of range", n)
	}
	t.errs = make([]float64, n)
	for i := range t.errs {
		t.errs[i] = r.F64()
	}
	t.sincTune = r.Int()
	t.adapts = r.Int()
	return r.Err()
}

// CkptSave writes the multi-controller's mutable state: the adapted
// utilisation target plus every per-dimension controller and tuner.
func (m *Multi) CkptSave(w *ckpt.Writer) {
	w.F64(m.cfg.UtilTarget)
	for k, c := range m.ctrls {
		c.CkptSave(w)
		if t := m.tuners[k]; t != nil {
			w.Bool(true)
			t.CkptSave(w)
		} else {
			w.Bool(false)
		}
	}
}

// CkptLoad restores the multi-controller's mutable state.
func (m *Multi) CkptLoad(r *ckpt.Reader) error {
	m.cfg.UtilTarget = r.F64()
	for k, c := range m.ctrls {
		if err := c.CkptLoad(r); err != nil {
			return err
		}
		hasTuner := r.Bool()
		if hasTuner != (m.tuners[k] != nil) {
			return fmt.Errorf("pid: ckpt: tuner presence mismatch on dimension %d", k)
		}
		if hasTuner {
			if err := m.tuners[k].CkptLoad(r); err != nil {
				return err
			}
		}
	}
	return r.Err()
}
