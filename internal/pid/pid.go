// Package pid implements the controllers at the heart of the EVOLVE
// autoscaler: a production-grade scalar PID with anti-windup, derivative
// filtering and output clamping; an online adaptive tuner that reshapes the
// gains from the observed closed-loop behaviour; and a multi-dimensional
// variant that runs one loop per resource kind and distributes corrective
// effort across them.
package pid

import (
	"fmt"
	"math"
	"time"
)

// Gains holds the three PID gains.
type Gains struct {
	Kp, Ki, Kd float64
}

// Config parameterises a Controller.
type Config struct {
	Gains Gains

	// OutMin/OutMax clamp the controller output. Integral anti-windup
	// uses back-calculation against these limits.
	OutMin, OutMax float64

	// DerivativeTau is the time constant of the first-order low-pass
	// filter on the derivative term; zero disables filtering.
	DerivativeTau time.Duration

	// SetpointWeight scales the proportional action on setpoint changes
	// (2-DOF PID); 1 is the classical behaviour. Derivative always acts
	// on the measurement only, so setpoint steps never cause derivative
	// kick.
	SetpointWeight float64
}

// DefaultConfig returns a conservative starting configuration with
// symmetric output limits of ±1.
func DefaultConfig() Config {
	return Config{
		Gains:          Gains{Kp: 0.5, Ki: 0.1, Kd: 0.05},
		OutMin:         -1,
		OutMax:         1,
		DerivativeTau:  2 * time.Second,
		SetpointWeight: 1,
	}
}

// Term is the decomposition of one Update: the control error, the three
// contributions after anti-windup settled, the clamped output and
// whether the output limiter engaged. P+I+D always equals Out — the
// integral contribution is read back after back-calculation bled it.
type Term struct {
	Err     float64
	P       float64
	I       float64
	D       float64
	Out     float64
	Clamped bool
}

// Controller is a discrete-time PID controller. It is not safe for
// concurrent use.
type Controller struct {
	cfg Config

	integral   float64
	prevMeas   float64
	prevDeriv  float64
	havePrev   bool
	lastOutput float64
	lastErr    float64
	lastTerm   Term
}

// NewController validates cfg and returns a controller.
func NewController(cfg Config) (*Controller, error) {
	if cfg.OutMax <= cfg.OutMin {
		return nil, fmt.Errorf("pid: OutMax (%v) must exceed OutMin (%v)", cfg.OutMax, cfg.OutMin)
	}
	if cfg.Gains.Kp < 0 || cfg.Gains.Ki < 0 || cfg.Gains.Kd < 0 {
		return nil, fmt.Errorf("pid: negative gains %+v", cfg.Gains)
	}
	if cfg.SetpointWeight == 0 {
		cfg.SetpointWeight = 1
	}
	return &Controller{cfg: cfg}, nil
}

// MustController is NewController that panics on error.
func MustController(cfg Config) *Controller {
	c, err := NewController(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Gains returns the current gains.
func (c *Controller) Gains() Gains { return c.cfg.Gains }

// SetGains replaces the gains on the fly (used by the adaptive tuner).
// Negative gains are clamped to zero.
func (c *Controller) SetGains(g Gains) {
	if g.Kp < 0 {
		g.Kp = 0
	}
	if g.Ki < 0 {
		g.Ki = 0
	}
	if g.Kd < 0 {
		g.Kd = 0
	}
	c.cfg.Gains = g
}

// Output returns the most recent controller output.
func (c *Controller) Output() float64 { return c.lastOutput }

// LastError returns the most recent control error (setpoint - measured).
func (c *Controller) LastError() float64 { return c.lastErr }

// LastTerm returns the decomposition of the most recent Update; the
// zero Term before the first call.
func (c *Controller) LastTerm() Term { return c.lastTerm }

// Reset clears integral and derivative state.
func (c *Controller) Reset() {
	c.integral, c.prevMeas, c.prevDeriv = 0, 0, 0
	c.havePrev = false
	c.lastOutput, c.lastErr = 0, 0
	c.lastTerm = Term{}
}

// Update advances the controller by dt with the given setpoint and
// measurement and returns the clamped output. dt must be positive.
func (c *Controller) Update(setpoint, measured float64, dt time.Duration) float64 {
	if dt <= 0 {
		return c.lastOutput
	}
	dts := dt.Seconds()
	g := c.cfg.Gains
	err := setpoint - measured
	c.lastErr = err

	// Proportional with setpoint weighting.
	p := g.Kp * (c.cfg.SetpointWeight*setpoint - measured)

	// Derivative on measurement with optional low-pass filter.
	var d float64
	if c.havePrev && g.Kd > 0 {
		raw := -(measured - c.prevMeas) / dts
		if tau := c.cfg.DerivativeTau.Seconds(); tau > 0 {
			alpha := dts / (tau + dts)
			d = c.prevDeriv + alpha*(raw-c.prevDeriv)
		} else {
			d = raw
		}
		c.prevDeriv = d
		d *= g.Kd
	}

	// Tentative integral update, then back-calculation anti-windup: if
	// the unclamped output exceeds the limits, bleed the integral so the
	// clamped output sits exactly on the limit.
	c.integral += err * dts
	i := g.Ki * c.integral
	out := p + i + d
	clamped := false
	if out > c.cfg.OutMax {
		clamped = true
		if g.Ki > 0 {
			c.integral -= (out - c.cfg.OutMax) / g.Ki
		}
		out = c.cfg.OutMax
	} else if out < c.cfg.OutMin {
		clamped = true
		if g.Ki > 0 {
			c.integral += (c.cfg.OutMin - out) / g.Ki
		}
		out = c.cfg.OutMin
	}

	c.prevMeas = measured
	c.havePrev = true
	c.lastOutput = out
	// Read the integral contribution back after anti-windup so the
	// recorded terms sum to the clamped output (out - p - d when the
	// limiter engaged without an integral gain to bleed).
	c.lastTerm = Term{Err: err, P: p, I: out - p - d, D: d, Out: out, Clamped: clamped}
	return out
}

// TunerConfig parameterises the adaptive gain tuner.
type TunerConfig struct {
	// Window is how many recent errors the tuner inspects.
	Window int
	// OscillationThreshold: fraction of sign flips in the window above
	// which the loop is considered oscillating.
	OscillationThreshold float64
	// SluggishThreshold: if the normalised mean |error| stays above this
	// with few sign flips, the loop is considered sluggish.
	SluggishThreshold float64
	// Step is the multiplicative gain adjustment per adaptation.
	Step float64
	// MinKp/MaxKp bound the proportional gain; Ki and Kd scale with Kp
	// preserving their initial ratios.
	MinKp, MaxKp float64
	// Cooldown is the number of Observe calls between adaptations.
	Cooldown int
}

// DefaultTunerConfig returns the tuner settings used by the EVOLVE core.
func DefaultTunerConfig() TunerConfig {
	return TunerConfig{
		Window:               12,
		OscillationThreshold: 0.4,
		SluggishThreshold:    0.15,
		Step:                 1.3,
		MinKp:                0.05,
		MaxKp:                8,
		Cooldown:             6,
	}
}

// Tuner adapts a controller's gains online. The heuristic mirrors how a
// human detunes a loop: persistent error with little sign change means the
// loop is too timid (raise gains); frequent sign flips with significant
// amplitude mean it is oscillating (lower gains and damp).
type Tuner struct {
	cfg      TunerConfig
	ctrl     *Controller
	ratioI   float64 // Ki/Kp at creation, preserved across adaptations
	ratioD   float64 // Kd/Kp at creation
	errs     []float64
	sincTune int
	adapts   int
}

// NewTuner wraps ctrl with an adaptive tuner.
func NewTuner(ctrl *Controller, cfg TunerConfig) *Tuner {
	if cfg.Window <= 1 {
		cfg.Window = DefaultTunerConfig().Window
	}
	if cfg.Step <= 1 {
		cfg.Step = DefaultTunerConfig().Step
	}
	g := ctrl.Gains()
	ratioI, ratioD := 0.0, 0.0
	if g.Kp > 0 {
		ratioI, ratioD = g.Ki/g.Kp, g.Kd/g.Kp
	}
	return &Tuner{cfg: cfg, ctrl: ctrl, ratioI: ratioI, ratioD: ratioD}
}

// Adaptations returns how many gain adjustments have been applied.
func (t *Tuner) Adaptations() int { return t.adapts }

// Observe feeds one normalised control error (error/setpoint scale) after
// each controller update and adapts gains when a pattern emerges.
func (t *Tuner) Observe(normErr float64) {
	t.errs = append(t.errs, normErr)
	if len(t.errs) > t.cfg.Window {
		t.errs = t.errs[1:]
	}
	t.sincTune++
	if len(t.errs) < t.cfg.Window || t.sincTune < t.cfg.Cooldown {
		return
	}

	flips := 0
	var absSum float64
	for i, e := range t.errs {
		absSum += math.Abs(e)
		if i > 0 && e*t.errs[i-1] < 0 {
			flips++
		}
	}
	meanAbs := absSum / float64(len(t.errs))
	flipFrac := float64(flips) / float64(len(t.errs)-1)

	g := t.ctrl.Gains()
	switch {
	case flipFrac >= t.cfg.OscillationThreshold && meanAbs > 0.05:
		// Oscillating: back off proportional/integral, keep damping.
		g.Kp = math.Max(t.cfg.MinKp, g.Kp/t.cfg.Step)
	case flipFrac < t.cfg.OscillationThreshold/2 && meanAbs > t.cfg.SluggishThreshold:
		// Sluggish: persistent one-sided error, push harder.
		g.Kp = math.Min(t.cfg.MaxKp, g.Kp*t.cfg.Step)
	default:
		return
	}
	g.Ki = g.Kp * t.ratioI
	g.Kd = g.Kp * t.ratioD
	t.ctrl.SetGains(g)
	t.adapts++
	t.sincTune = 0
}
