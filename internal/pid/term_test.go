package pid

import (
	"math"
	"testing"
	"time"
)

// TestLastTermDecomposition checks the invariant documented on Term:
// P+I+D always equals Out, including when the output limiter engages and
// back-calculation bleeds the integral.
func TestLastTermDecomposition(t *testing.T) {
	c := MustController(Config{
		Gains:  Gains{Kp: 0.5, Ki: 0.1, Kd: 0.05},
		OutMin: -1, OutMax: 1,
		DerivativeTau: 2 * time.Second,
	})
	if c.LastTerm() != (Term{}) {
		t.Fatal("fresh controller should report a zero Term")
	}

	meas := 0.0
	for i := 0; i < 40; i++ {
		// Plant lags the controller so we sweep through unclamped and
		// clamped regimes.
		out := c.Update(5, meas, time.Second)
		meas += 0.3 * out

		term := c.LastTerm()
		if term.Out != out {
			t.Fatalf("step %d: LastTerm().Out = %v, Update returned %v", i, term.Out, out)
		}
		if term.Err != c.LastError() {
			t.Fatalf("step %d: Err = %v, LastError = %v", i, term.Err, c.LastError())
		}
		if sum := term.P + term.I + term.D; math.Abs(sum-term.Out) > 1e-12 {
			t.Fatalf("step %d: P+I+D = %v, Out = %v (term %+v)", i, sum, term.Out, term)
		}
		if term.Clamped != (out == 1 || out == -1) {
			t.Fatalf("step %d: Clamped = %v with out %v", i, term.Clamped, out)
		}
	}
}

// TestLastTermClampedWithoutIntegral: with Ki=0 back-calculation cannot
// bleed the integral, so the recorded I term absorbs the clamp residual
// to keep the decomposition summing to Out.
func TestLastTermClampedWithoutIntegral(t *testing.T) {
	c := MustController(Config{Gains: Gains{Kp: 10}, OutMin: -1, OutMax: 1})
	out := c.Update(5, 0, time.Second)
	term := c.LastTerm()
	if out != 1 || !term.Clamped {
		t.Fatalf("expected clamped output 1, got %v (term %+v)", out, term)
	}
	if sum := term.P + term.I + term.D; math.Abs(sum-term.Out) > 1e-12 {
		t.Fatalf("P+I+D = %v, Out = %v (term %+v)", sum, term.Out, term)
	}
	// The raw proportional action (Kp·err = 50) is preserved in P.
	if term.P != 50 {
		t.Fatalf("P = %v, want 50", term.P)
	}
}

func TestResetClearsLastTerm(t *testing.T) {
	c := MustController(DefaultConfig())
	c.Update(1, 0, time.Second)
	if c.LastTerm() == (Term{}) {
		t.Fatal("Update did not populate LastTerm")
	}
	c.Reset()
	if c.LastTerm() != (Term{}) {
		t.Fatal("Reset did not clear LastTerm")
	}
}
