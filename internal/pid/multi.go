package pid

import (
	"math"
	"time"

	"evolve/internal/resource"
)

// MultiConfig parameterises a Multi controller.
type MultiConfig struct {
	// Controller is the per-dimension PID template.
	Controller Config
	// Gamma is the bottleneck-emphasis exponent: per-resource corrective
	// weight is utilisation^Gamma (normalised). Higher values focus the
	// correction more sharply on the bottleneck resource.
	Gamma float64
	// Adaptive enables per-dimension online gain tuning.
	Adaptive bool
	// Tuner configures the adaptive tuner when Adaptive is set.
	Tuner TunerConfig

	// UtilTarget is the per-resource utilisation the controller steers
	// towards once the performance objective is met; allocation beyond
	// demand/UtilTarget is treated as reclaimable slack.
	UtilTarget float64
	// SlackBeta is the gain on the slack-reclamation term. Zero disables
	// reclamation (useful for ablations).
	SlackBeta float64
	// SlackThreshold: slack reclamation is only active while the
	// normalised performance error is at or below this value, so a
	// struggling application is never shrunk.
	SlackThreshold float64
}

// DefaultMultiConfig returns the configuration the EVOLVE core uses.
func DefaultMultiConfig() MultiConfig {
	return MultiConfig{
		Controller:     DefaultConfig(),
		Gamma:          2,
		Adaptive:       true,
		Tuner:          DefaultTunerConfig(),
		UtilTarget:     0.7,
		SlackBeta:      0.25,
		SlackThreshold: 0.1,
	}
}

// Multi extends the classical one-dimensional PID to all resource kinds:
// a single performance-level error drives one controller per resource,
// with the corrective effort distributed according to which resources are
// the bottleneck (when growing) or the most over-provisioned (when
// shrinking). This is the paper's "multi-resource adaptive PID" novelty.
type Multi struct {
	cfg    MultiConfig
	ctrls  [resource.NumKinds]*Controller
	tuners [resource.NumKinds]*Tuner
}

// NewMulti builds a Multi from cfg.
func NewMulti(cfg MultiConfig) (*Multi, error) {
	if cfg.Gamma <= 0 {
		cfg.Gamma = 2
	}
	if cfg.UtilTarget <= 0 || cfg.UtilTarget > 1 {
		cfg.UtilTarget = 0.7
	}
	m := &Multi{cfg: cfg}
	for k := range m.ctrls {
		c, err := NewController(cfg.Controller)
		if err != nil {
			return nil, err
		}
		m.ctrls[k] = c
		if cfg.Adaptive {
			m.tuners[k] = NewTuner(c, cfg.Tuner)
		}
	}
	return m, nil
}

// MustMulti is NewMulti that panics on error.
func MustMulti(cfg MultiConfig) *Multi {
	m, err := NewMulti(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Controller returns the per-kind controller, for inspection in tests and
// ablations.
func (m *Multi) Controller(k resource.Kind) *Controller { return m.ctrls[k] }

// SetUtilTarget retargets the utilisation the slack/headroom terms steer
// towards; the EVOLVE core adapts this online per application. Values
// outside (0, 1) are ignored.
func (m *Multi) SetUtilTarget(v float64) {
	if v > 0 && v < 1 {
		m.cfg.UtilTarget = v
	}
}

// UtilTarget returns the current utilisation target.
func (m *Multi) UtilTarget() float64 { return m.cfg.UtilTarget }

// Reset clears all per-dimension controller state.
func (m *Multi) Reset() {
	for _, c := range m.ctrls {
		c.Reset()
	}
}

// Adaptations returns the total number of gain adjustments across all
// dimensions (0 when not adaptive).
func (m *Multi) Adaptations() int {
	n := 0
	for _, t := range m.tuners {
		if t != nil {
			n += t.Adaptations()
		}
	}
	return n
}

// LastTerms returns every dimension's most recent PID decomposition.
func (m *Multi) LastTerms() [resource.NumKinds]Term {
	var out [resource.NumKinds]Term
	for k, c := range m.ctrls {
		out[k] = c.LastTerm()
	}
	return out
}

// LastGains returns every dimension's current gains.
func (m *Multi) LastGains() [resource.NumKinds]Gains {
	var out [resource.NumKinds]Gains
	for k, c := range m.ctrls {
		out[k] = c.Gains()
	}
	return out
}

// GrowWeights returns the normalised bottleneck weights used when the
// application needs more resources: w_k ∝ util_k^Gamma. Utilisations are
// clamped to [0.01, 10] so a zero-utilisation dimension still receives a
// sliver of correction (the demand estimate may simply lag).
func (m *Multi) GrowWeights(util resource.Vector) resource.Vector {
	var w resource.Vector
	var sum float64
	for k := range w {
		u := math.Min(math.Max(util[k], 0.01), 10)
		w[k] = math.Pow(u, m.cfg.Gamma)
		sum += w[k]
	}
	return w.Scale(1 / sum)
}

// ShrinkWeights returns the weights used when resources can be reclaimed:
// the slack (1-util) of each dimension, normalised, so the most
// over-provisioned resource shrinks fastest and the bottleneck is barely
// touched.
func (m *Multi) ShrinkWeights(util resource.Vector) resource.Vector {
	var w resource.Vector
	var sum float64
	for k := range w {
		slack := 1 - util[k]
		if slack < 0.01 {
			slack = 0.01
		}
		w[k] = math.Pow(slack, m.cfg.Gamma)
		sum += w[k]
	}
	return w.Scale(1 / sum)
}

// Update advances every dimension by dt. perfErr is the normalised
// performance error: positive when the application is missing its PLO
// (needs more resources), negative when it over-performs (resources can
// be reclaimed). util is the per-resource utilisation of the current
// allocation. The result is a per-resource fractional adjustment, each
// component within the controller's output limits; callers apply
// alloc_k *= 1 + out_k.
//
// Two pressures combine per dimension: the shared performance error,
// distributed by bottleneck (grow) or slack (shrink) weights, and — once
// the PLO is essentially met — a slack-reclamation term that pulls each
// dimension's utilisation up to UtilTarget. The second term is what keeps
// non-bottleneck dimensions from riding the bottleneck's corrections and
// drains their integrators when the shared error settles at zero.
func (m *Multi) Update(perfErr float64, util resource.Vector, dt time.Duration) resource.Vector {
	var weights resource.Vector
	if perfErr >= 0 {
		weights = m.GrowWeights(util)
	} else {
		weights = m.ShrinkWeights(util)
	}
	// Scale weights so the dominant dimension gets the full error and
	// others proportionally less; this keeps the loop gain of the
	// bottleneck dimension independent of how many dimensions exist.
	maxW, _ := weights.MaxComponent()
	if maxW > 0 {
		weights = weights.Scale(1 / maxW)
	}

	reclaim := m.cfg.SlackBeta > 0 && perfErr <= m.cfg.SlackThreshold

	var out resource.Vector
	for k, c := range m.ctrls {
		e := perfErr * weights[k]
		// Over-performance must never starve an efficiently-used
		// dimension: a latency target sits near the saturation knee of
		// the service curve, and "shrink until the PLO error is zero"
		// walks straight off that cliff. Once a dimension is at or above
		// the utilisation target, only the headroom term below may move
		// it, and the loop regulates utilisation instead of latency.
		if perfErr < 0 && util[k] >= m.cfg.UtilTarget {
			e = 0
		}
		if dev := util[k] - m.cfg.UtilTarget; m.cfg.SlackBeta > 0 {
			switch {
			case dev > 0:
				// Dimension running hot: maintain headroom regardless of
				// the PLO state — running a resource at 95% is how paging
				// and throttling collapses start.
				e += m.cfg.SlackBeta * dev
			case reclaim:
				// Dimension idle and the PLO is met: reclaim the slack.
				e += m.cfg.SlackBeta * dev
			}
		}
		// Drive the controller as a regulator at setpoint 0 with the
		// (negated) error as the measurement, so the derivative term acts
		// on error changes without setpoint kick.
		out[k] = c.Update(0, -e, dt)
		if t := m.tuners[k]; t != nil {
			t.Observe(e)
		}
	}
	return out
}
