package pid

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"evolve/internal/resource"
)

// Property: whatever sequence of (setpoint, measurement) pairs is fed in,
// the controller output never leaves [OutMin, OutMax] and never becomes
// NaN or Inf.
func TestControllerOutputAlwaysBounded(t *testing.T) {
	prop := func(raw []int16) bool {
		c := MustController(Config{
			Gains:  Gains{Kp: 1.5, Ki: 0.4, Kd: 0.2},
			OutMin: -2, OutMax: 3,
			DerivativeTau: 3 * time.Second,
		})
		for i := 0; i+1 < len(raw); i += 2 {
			set := float64(raw[i]) / 100
			meas := float64(raw[i+1]) / 100
			out := c.Update(set, meas, time.Second)
			if math.IsNaN(out) || math.IsInf(out, 0) || out < -2-1e-12 || out > 3+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the tuner never drives gains negative or outside its bounds,
// no matter what error sequence it observes.
func TestTunerGainsAlwaysWithinBounds(t *testing.T) {
	cfg := DefaultTunerConfig()
	prop := func(raw []int8) bool {
		c := MustController(Config{Gains: Gains{Kp: 1, Ki: 0.2, Kd: 0.1}, OutMin: -5, OutMax: 5})
		tn := NewTuner(c, cfg)
		for _, r := range raw {
			tn.Observe(float64(r) / 64)
			g := c.Gains()
			if g.Kp < cfg.MinKp-1e-12 || g.Kp > cfg.MaxKp+1e-12 || g.Ki < 0 || g.Kd < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Multi outputs stay within controller limits for arbitrary
// error/utilisation inputs.
func TestMultiOutputAlwaysBounded(t *testing.T) {
	prop := func(raw []int16) bool {
		cfg := DefaultMultiConfig()
		cfg.Controller.OutMin, cfg.Controller.OutMax = -0.5, 1.5
		m := MustMulti(cfg)
		for i := 0; i+4 < len(raw); i += 5 {
			perfErr := float64(raw[i]) / 1000
			util := resource.New(
				math.Abs(float64(raw[i+1]))/5000,
				math.Abs(float64(raw[i+2]))/5000,
				math.Abs(float64(raw[i+3]))/5000,
				math.Abs(float64(raw[i+4]))/5000,
			)
			out := m.Update(perfErr, util, time.Second)
			for _, k := range resource.Kinds() {
				v := out.Get(k)
				if math.IsNaN(v) || v < -0.5-1e-12 || v > 1.5+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
