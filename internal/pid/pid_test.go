package pid

import (
	"math"
	"testing"
	"time"
)

const dt = time.Second

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(Config{OutMin: 1, OutMax: 0}); err == nil {
		t.Error("inverted limits should fail")
	}
	if _, err := NewController(Config{Gains: Gains{Kp: -1}, OutMin: -1, OutMax: 1}); err == nil {
		t.Error("negative gains should fail")
	}
	if _, err := NewController(DefaultConfig()); err != nil {
		t.Errorf("default config should validate: %v", err)
	}
}

func TestMustControllerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustController should panic on bad config")
		}
	}()
	MustController(Config{OutMin: 1, OutMax: -1})
}

func TestProportionalOnly(t *testing.T) {
	c := MustController(Config{Gains: Gains{Kp: 2}, OutMin: -100, OutMax: 100})
	out := c.Update(10, 4, dt)
	if out != 12 {
		t.Errorf("P-only output = %v, want 12", out)
	}
	if c.LastError() != 6 {
		t.Errorf("LastError = %v, want 6", c.LastError())
	}
}

func TestIntegralAccumulates(t *testing.T) {
	c := MustController(Config{Gains: Gains{Ki: 1}, OutMin: -100, OutMax: 100})
	c.Update(1, 0, dt)
	c.Update(1, 0, dt)
	out := c.Update(1, 0, dt)
	if math.Abs(out-3) > 1e-9 {
		t.Errorf("I output after 3s of unit error = %v, want 3", out)
	}
}

func TestAntiWindup(t *testing.T) {
	c := MustController(Config{Gains: Gains{Ki: 1}, OutMin: -1, OutMax: 1})
	// Saturate hard for a long time.
	for i := 0; i < 100; i++ {
		if out := c.Update(10, 0, dt); out > 1 {
			t.Fatalf("output %v exceeded OutMax", out)
		}
	}
	// With back-calculation, the loop must unwind essentially immediately
	// once the error reverses, instead of burning off 1000 error-seconds.
	out := c.Update(0, 10, dt)
	if out > 0 {
		t.Errorf("after error reversal output = %v, want <= 0 (no windup)", out)
	}
}

func TestOutputClamping(t *testing.T) {
	c := MustController(Config{Gains: Gains{Kp: 100}, OutMin: -2, OutMax: 2})
	if out := c.Update(100, 0, dt); out != 2 {
		t.Errorf("clamped high = %v", out)
	}
	if out := c.Update(-100, 0, dt); out != -2 {
		t.Errorf("clamped low = %v", out)
	}
}

func TestDerivativeOnMeasurementNoSetpointKick(t *testing.T) {
	cfg := Config{Gains: Gains{Kd: 10}, OutMin: -100, OutMax: 100, DerivativeTau: 0}
	c := MustController(cfg)
	c.Update(0, 5, dt)
	// Large setpoint step with constant measurement: derivative must not
	// react at all.
	out := c.Update(100, 5, dt)
	if out != 0 {
		t.Errorf("setpoint step caused derivative kick: %v", out)
	}
	// Measurement ramp should produce negative derivative action.
	out = c.Update(100, 10, dt)
	if out >= 0 {
		t.Errorf("rising measurement should give negative D action: %v", out)
	}
}

func TestDerivativeFilterSmooths(t *testing.T) {
	raw := MustController(Config{Gains: Gains{Kd: 1}, OutMin: -100, OutMax: 100})
	filt := MustController(Config{Gains: Gains{Kd: 1}, OutMin: -100, OutMax: 100, DerivativeTau: 5 * time.Second})
	raw.Update(0, 0, dt)
	filt.Update(0, 0, dt)
	ro := raw.Update(0, 10, dt) // measurement jump
	fo := filt.Update(0, 10, dt)
	if math.Abs(fo) >= math.Abs(ro) {
		t.Errorf("filtered derivative |%v| should be smaller than raw |%v|", fo, ro)
	}
}

func TestUpdateZeroDtIsNoop(t *testing.T) {
	c := MustController(DefaultConfig())
	c.Update(1, 0, dt)
	prev := c.Output()
	if out := c.Update(5, 3, 0); out != prev {
		t.Errorf("zero-dt update changed output: %v vs %v", out, prev)
	}
}

func TestReset(t *testing.T) {
	c := MustController(DefaultConfig())
	c.Update(1, 0, dt)
	c.Reset()
	if c.Output() != 0 || c.LastError() != 0 {
		t.Error("Reset should clear state")
	}
}

func TestSetGainsClampsNegative(t *testing.T) {
	c := MustController(DefaultConfig())
	c.SetGains(Gains{Kp: -1, Ki: -2, Kd: -3})
	g := c.Gains()
	if g.Kp != 0 || g.Ki != 0 || g.Kd != 0 {
		t.Errorf("negative gains not clamped: %+v", g)
	}
}

// plant is a first-order lag: y += (u*gain - y) * dt/tau.
type plant struct {
	y, gain, tau float64
}

func (p *plant) step(u float64, d time.Duration) float64 {
	p.y += (u*p.gain - p.y) * d.Seconds() / p.tau
	return p.y
}

func TestClosedLoopConvergence(t *testing.T) {
	c := MustController(Config{
		Gains:  Gains{Kp: 0.8, Ki: 0.4, Kd: 0.1},
		OutMin: 0, OutMax: 100,
		DerivativeTau: 2 * time.Second,
	})
	p := &plant{gain: 2, tau: 5}
	setpoint := 10.0
	var y float64
	for i := 0; i < 300; i++ {
		u := c.Update(setpoint, y, dt)
		y = p.step(u, dt)
	}
	if math.Abs(y-setpoint) > 0.1 {
		t.Errorf("closed loop settled at %v, want ≈%v", y, setpoint)
	}
}

func TestClosedLoopTracksSetpointChanges(t *testing.T) {
	c := MustController(Config{
		Gains:  Gains{Kp: 0.8, Ki: 0.4},
		OutMin: 0, OutMax: 100,
	})
	p := &plant{gain: 2, tau: 5}
	var y float64
	for i := 0; i < 200; i++ {
		y = p.step(c.Update(10, y, dt), dt)
	}
	for i := 0; i < 200; i++ {
		y = p.step(c.Update(25, y, dt), dt)
	}
	if math.Abs(y-25) > 0.2 {
		t.Errorf("after setpoint change settled at %v, want ≈25", y)
	}
}

func TestTunerRaisesGainsWhenSluggish(t *testing.T) {
	c := MustController(Config{Gains: Gains{Kp: 0.1, Ki: 0.02}, OutMin: -10, OutMax: 10})
	tn := NewTuner(c, DefaultTunerConfig())
	kp0 := c.Gains().Kp
	// Persistent large one-sided error: the tuner must push gains up.
	for i := 0; i < 50; i++ {
		tn.Observe(0.5)
	}
	if c.Gains().Kp <= kp0 {
		t.Errorf("Kp = %v did not increase from %v under sluggish error", c.Gains().Kp, kp0)
	}
	if tn.Adaptations() == 0 {
		t.Error("no adaptations recorded")
	}
}

func TestTunerLowersGainsWhenOscillating(t *testing.T) {
	c := MustController(Config{Gains: Gains{Kp: 4, Ki: 0.8}, OutMin: -10, OutMax: 10})
	tn := NewTuner(c, DefaultTunerConfig())
	kp0 := c.Gains().Kp
	for i := 0; i < 50; i++ {
		e := 0.4
		if i%2 == 0 {
			e = -0.4
		}
		tn.Observe(e)
	}
	if c.Gains().Kp >= kp0 {
		t.Errorf("Kp = %v did not decrease from %v under oscillation", c.Gains().Kp, kp0)
	}
}

func TestTunerQuietLoopUntouched(t *testing.T) {
	c := MustController(DefaultConfig())
	g0 := c.Gains()
	tn := NewTuner(c, DefaultTunerConfig())
	for i := 0; i < 100; i++ {
		tn.Observe(0.01)
	}
	if c.Gains() != g0 {
		t.Errorf("quiet loop gains changed: %+v -> %+v", g0, c.Gains())
	}
}

func TestTunerPreservesGainRatios(t *testing.T) {
	c := MustController(Config{Gains: Gains{Kp: 1, Ki: 0.5, Kd: 0.25}, OutMin: -10, OutMax: 10})
	tn := NewTuner(c, DefaultTunerConfig())
	for i := 0; i < 50; i++ {
		tn.Observe(0.5)
	}
	g := c.Gains()
	if math.Abs(g.Ki/g.Kp-0.5) > 1e-9 || math.Abs(g.Kd/g.Kp-0.25) > 1e-9 {
		t.Errorf("gain ratios drifted: %+v", g)
	}
}

func TestTunerRespectsBounds(t *testing.T) {
	cfg := DefaultTunerConfig()
	cfg.MaxKp = 0.5
	c := MustController(Config{Gains: Gains{Kp: 0.4}, OutMin: -10, OutMax: 10})
	tn := NewTuner(c, cfg)
	for i := 0; i < 500; i++ {
		tn.Observe(0.9)
	}
	if c.Gains().Kp > cfg.MaxKp+1e-9 {
		t.Errorf("Kp = %v exceeded MaxKp %v", c.Gains().Kp, cfg.MaxKp)
	}
}

func TestAdaptiveBeatsFixedSluggishGains(t *testing.T) {
	// A deliberately under-tuned loop: adaptive tuning should reach the
	// setpoint band significantly sooner than the fixed loop.
	run := func(adaptive bool) int {
		c := MustController(Config{Gains: Gains{Kp: 0.05, Ki: 0.01}, OutMin: 0, OutMax: 100})
		var tn *Tuner
		if adaptive {
			tn = NewTuner(c, DefaultTunerConfig())
		}
		p := &plant{gain: 1, tau: 3}
		setpoint := 50.0
		var y float64
		settled := -1
		for i := 0; i < 600; i++ {
			u := c.Update(setpoint, y, dt)
			if tn != nil {
				tn.Observe((setpoint - y) / setpoint)
			}
			y = p.step(u, dt)
			if settled < 0 && math.Abs(y-setpoint)/setpoint < 0.05 {
				settled = i
			}
		}
		if settled < 0 {
			settled = 600
		}
		return settled
	}
	fixed, adaptive := run(false), run(true)
	if adaptive >= fixed {
		t.Errorf("adaptive settled at %d, fixed at %d; adaptive should be faster", adaptive, fixed)
	}
}
