package pid

import (
	"math"
	"testing"
	"time"

	"evolve/internal/resource"
)

func TestNewMultiValidation(t *testing.T) {
	if _, err := NewMulti(MultiConfig{Controller: Config{OutMin: 1, OutMax: 0}}); err == nil {
		t.Error("bad controller config should fail")
	}
	m, err := NewMulti(DefaultMultiConfig())
	if err != nil || m == nil {
		t.Fatalf("default config failed: %v", err)
	}
	for _, k := range resource.Kinds() {
		if m.Controller(k) == nil {
			t.Errorf("missing controller for %v", k)
		}
	}
}

func TestMustMultiPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMulti should panic")
		}
	}()
	MustMulti(MultiConfig{Controller: Config{OutMin: 1, OutMax: 0}})
}

func TestGrowWeightsFocusOnBottleneck(t *testing.T) {
	m := MustMulti(DefaultMultiConfig())
	util := resource.New(0.95, 0.30, 0.10, 0.10) // CPU-bound
	w := m.GrowWeights(util)
	maxW, k := w.MaxComponent()
	if k != resource.CPU {
		t.Errorf("dominant grow weight on %v, want cpu (weights %v)", k, w)
	}
	if maxW < 0.5 {
		t.Errorf("bottleneck weight %v too diffuse", maxW)
	}
	if s := w.Sum(); math.Abs(s-1) > 1e-9 {
		t.Errorf("weights sum %v, want 1", s)
	}
}

func TestShrinkWeightsFocusOnSlack(t *testing.T) {
	m := MustMulti(DefaultMultiConfig())
	util := resource.New(0.95, 0.10, 0.50, 0.50)
	w := m.ShrinkWeights(util)
	_, k := w.MaxComponent()
	if k != resource.Memory {
		t.Errorf("dominant shrink weight on %v, want memory (weights %v)", k, w)
	}
	if w[resource.CPU] >= w[resource.Memory] {
		t.Error("bottleneck should shrink slower than slack dimension")
	}
	if s := w.Sum(); math.Abs(s-1) > 1e-9 {
		t.Errorf("weights sum %v, want 1", s)
	}
}

func TestWeightsHandleExtremes(t *testing.T) {
	m := MustMulti(DefaultMultiConfig())
	// Zero utilisation everywhere must not divide by zero.
	w := m.GrowWeights(resource.Vector{})
	if s := w.Sum(); math.Abs(s-1) > 1e-9 {
		t.Errorf("zero-util grow weights sum %v", s)
	}
	// Over-saturated utilisation (>1) also fine.
	w = m.ShrinkWeights(resource.New(3, 2, 1.5, 1.1))
	if s := w.Sum(); math.Abs(s-1) > 1e-9 {
		t.Errorf("oversaturated shrink weights sum %v", s)
	}
}

func TestMultiUpdateGrowsBottleneckMost(t *testing.T) {
	cfg := DefaultMultiConfig()
	cfg.Adaptive = false
	m := MustMulti(cfg)
	util := resource.New(0.9, 0.2, 0.2, 0.2)
	var out resource.Vector
	for i := 0; i < 5; i++ {
		out = m.Update(0.5, util, time.Second) // missing PLO by 50%
	}
	if out[resource.CPU] <= 0 {
		t.Errorf("bottleneck adjustment %v should be positive", out[resource.CPU])
	}
	for _, k := range []resource.Kind{resource.Memory, resource.DiskIO, resource.NetIO} {
		if out[k] >= out[resource.CPU] {
			t.Errorf("non-bottleneck %v adjustment %v >= bottleneck %v", k, out[k], out[resource.CPU])
		}
	}
}

func TestMultiUpdateShrinksSlackMost(t *testing.T) {
	cfg := DefaultMultiConfig()
	cfg.Adaptive = false
	m := MustMulti(cfg)
	util := resource.New(0.9, 0.1, 0.5, 0.5)
	var out resource.Vector
	for i := 0; i < 5; i++ {
		out = m.Update(-0.4, util, time.Second) // over-performing
	}
	if out[resource.Memory] >= 0 {
		t.Errorf("slack dimension adjustment %v should be negative", out[resource.Memory])
	}
	if out[resource.Memory] >= out[resource.CPU] {
		t.Errorf("slack memory %v should shrink more than bottleneck cpu %v", out[resource.Memory], out[resource.CPU])
	}
}

func TestMultiOutputsWithinLimits(t *testing.T) {
	cfg := DefaultMultiConfig()
	cfg.Controller.OutMin, cfg.Controller.OutMax = -0.5, 1.0
	m := MustMulti(cfg)
	for i := 0; i < 100; i++ {
		out := m.Update(5, resource.New(1, 1, 1, 1), time.Second)
		for _, k := range resource.Kinds() {
			if out[k] < -0.5-1e-12 || out[k] > 1.0+1e-12 {
				t.Fatalf("output %v for %v outside limits", out[k], k)
			}
		}
	}
}

func TestMultiReset(t *testing.T) {
	m := MustMulti(DefaultMultiConfig())
	m.Update(1, resource.New(0.9, 0.5, 0.5, 0.5), time.Second)
	m.Reset()
	for _, k := range resource.Kinds() {
		if m.Controller(k).Output() != 0 {
			t.Errorf("controller %v not reset", k)
		}
	}
}

func TestMultiAdaptiveCountsAdaptations(t *testing.T) {
	m := MustMulti(DefaultMultiConfig())
	// Strong persistent error: at least the dominant dimension's tuner
	// must eventually adapt.
	util := resource.New(0.9, 0.9, 0.9, 0.9)
	for i := 0; i < 200; i++ {
		m.Update(0.8, util, time.Second)
	}
	if m.Adaptations() == 0 {
		t.Error("adaptive Multi recorded no adaptations under persistent error")
	}
}

func TestMultiSlackReclamationDrainsIdleDimensions(t *testing.T) {
	cfg := DefaultMultiConfig()
	cfg.Adaptive = false
	m := MustMulti(cfg)
	// PLO met exactly (err 0) but memory/disk/net nearly idle: the
	// reclamation term must emit negative adjustments for the idle
	// dimensions while leaving the well-utilised one alone.
	util := resource.New(0.7, 0.05, 0.05, 0.05)
	var out resource.Vector
	for i := 0; i < 10; i++ {
		out = m.Update(0, util, time.Second)
	}
	if out[resource.CPU] < -1e-6 {
		t.Errorf("on-target cpu dimension shrank: %v", out[resource.CPU])
	}
	for _, k := range []resource.Kind{resource.Memory, resource.DiskIO, resource.NetIO} {
		if out[k] >= 0 {
			t.Errorf("idle %v not reclaimed: %v", k, out[k])
		}
	}
}

func TestMultiNoReclamationWhileStruggling(t *testing.T) {
	cfg := DefaultMultiConfig()
	cfg.Adaptive = false
	m := MustMulti(cfg)
	// Badly missing the PLO: even idle dimensions must not shrink.
	util := resource.New(1.5, 0.05, 0.05, 0.05)
	out := m.Update(0.8, util, time.Second)
	for _, k := range resource.Kinds() {
		if out[k] < 0 {
			t.Errorf("dimension %v shrank (%v) while PLO badly missed", k, out[k])
		}
	}
}

// Closed-loop test: a 4-resource plant whose service capacity is the
// bottleneck minimum; the Multi controller must find the allocation that
// meets the performance target on the binding dimension without inflating
// the others proportionally.
func TestMultiClosedLoopBottleneckPlant(t *testing.T) {
	cfg := DefaultMultiConfig()
	cfg.Controller.OutMin, cfg.Controller.OutMax = -0.3, 0.5
	m := MustMulti(cfg)

	demand := resource.New(2000, 4<<30, 400e6, 50e6) // true per-replica demand
	alloc := resource.New(500, 1<<30, 100e6, 100e6)  // badly under CPU/mem/disk
	minAlloc := resource.New(50, 64<<20, 1e6, 1e6)

	perf := func(a resource.Vector) float64 {
		// Delivered performance fraction = min_k alloc_k/demand_k, capped at ~1.2.
		frac := math.Inf(1)
		for _, k := range resource.Kinds() {
			frac = math.Min(frac, a.Get(k)/demand.Get(k))
		}
		return math.Min(frac, 1.2)
	}

	for i := 0; i < 400; i++ {
		p := perf(alloc)
		err := 1.0 - p // want performance fraction 1.0
		util := demand.Mul(resource.New(1, 1, 1, 1)).Div(alloc).Min(resource.New(2, 2, 2, 2))
		out := m.Update(err, util, time.Second)
		for _, k := range resource.Kinds() {
			alloc = alloc.With(k, alloc.Get(k)*(1+out.Get(k)))
		}
		alloc = alloc.Max(minAlloc)
	}

	if p := perf(alloc); p < 0.95 {
		t.Errorf("closed loop delivered %v of target performance", p)
	}
	// The initially over-provisioned dimension (netio) must not have been
	// inflated along with the rest: it should stay within 4x of demand.
	if alloc[resource.NetIO] > 4*demand[resource.NetIO] {
		t.Errorf("non-bottleneck netio inflated to %v (demand %v)", alloc[resource.NetIO], demand[resource.NetIO])
	}
}
