package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Point is one sample of a load trace.
type Point struct {
	At   time.Duration
	Rate float64
}

// Trace is a sampled load shape that can round-trip through CSV and be
// replayed as a Pattern (step interpolation).
type Trace struct {
	Points []Point
}

// Sample materialises a pattern into a trace at the given step.
func Sample(p Pattern, horizon, step time.Duration) *Trace {
	if step <= 0 {
		step = time.Second
	}
	var tr Trace
	for at := time.Duration(0); at <= horizon; at += step {
		tr.Points = append(tr.Points, Point{at, p.Rate(at)})
	}
	return &tr
}

// Rate implements Pattern with step interpolation (the trace value holds
// until the next sample). Before the first point the first value is used.
func (t *Trace) Rate(at time.Duration) float64 {
	if len(t.Points) == 0 {
		return 0
	}
	i := sort.Search(len(t.Points), func(i int) bool { return t.Points[i].At > at })
	if i == 0 {
		return t.Points[0].Rate
	}
	return t.Points[i-1].Rate
}

// WriteCSV emits the trace as "seconds,rate" rows with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seconds", "rate"}); err != nil {
		return fmt.Errorf("workload: write header: %w", err)
	}
	for _, p := range t.Points {
		rec := []string{
			strconv.FormatFloat(p.At.Seconds(), 'f', 3, 64),
			strconv.FormatFloat(p.Rate, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV (or any seconds,rate CSV
// with a single header row). Rows must be time-ordered.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	var tr Trace
	prev := time.Duration(-1)
	for i, row := range rows[1:] {
		if len(row) < 2 {
			return nil, fmt.Errorf("workload: row %d: want 2 columns, got %d", i+2, len(row))
		}
		sec, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d seconds: %w", i+2, err)
		}
		rate, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d rate: %w", i+2, err)
		}
		if rate < 0 {
			return nil, fmt.Errorf("workload: row %d: negative rate %v", i+2, rate)
		}
		at := time.Duration(sec * float64(time.Second))
		if at <= prev {
			return nil, fmt.Errorf("workload: row %d: non-increasing time", i+2)
		}
		prev = at
		tr.Points = append(tr.Points, Point{at, rate})
	}
	if len(tr.Points) == 0 {
		return nil, fmt.Errorf("workload: trace has no data rows")
	}
	return &tr, nil
}

// Peak returns the maximum rate in the trace.
func (t *Trace) Peak() float64 {
	peak := 0.0
	for _, p := range t.Points {
		if p.Rate > peak {
			peak = p.Rate
		}
	}
	return peak
}

// Mean returns the arithmetic mean rate of the trace samples.
func (t *Trace) Mean() float64 {
	if len(t.Points) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range t.Points {
		s += p.Rate
	}
	return s / float64(len(t.Points))
}
