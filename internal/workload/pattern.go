// Package workload generates the offered-load shapes and application
// archetypes that drive the EVOLVE experiments: diurnal cycles, bursts,
// flash crowds and Markov-modulated arrivals for services, plus the
// canonical service archetypes (web, gateway, key-value store, inference)
// whose bottleneck resources differ — the property the multi-resource
// controller is built for. Traces can be sampled to CSV and read back.
package workload

import (
	"fmt"
	"math"
	"sync"
	"time"

	"evolve/internal/sim"
)

// Pattern is an offered-load function over virtual time (ops/second).
type Pattern interface {
	Rate(at time.Duration) float64
}

// Func adapts a plain function to a Pattern.
type Func func(at time.Duration) float64

// Rate implements Pattern.
func (f Func) Rate(at time.Duration) float64 { return f(at) }

// Constant is a flat load.
type Constant float64

// Rate implements Pattern.
func (c Constant) Rate(time.Duration) float64 { return float64(c) }

// Diurnal is a day/night sinusoid: rate swings between Trough and Peak
// with the given period, starting at the trough.
type Diurnal struct {
	Trough, Peak float64
	Period       time.Duration
}

// Rate implements Pattern.
func (d Diurnal) Rate(at time.Duration) float64 {
	if d.Period <= 0 {
		return d.Trough
	}
	phase := 2 * math.Pi * float64(at) / float64(d.Period)
	mid := (d.Peak + d.Trough) / 2
	amp := (d.Peak - d.Trough) / 2
	return mid - amp*math.Cos(phase)
}

// Step jumps from Before to After at time At.
type Step struct {
	Before, After float64
	At            time.Duration
}

// Rate implements Pattern.
func (s Step) Rate(at time.Duration) float64 {
	if at < s.At {
		return s.Before
	}
	return s.After
}

// Ramp linearly interpolates From→To over [Start, Start+Length].
type Ramp struct {
	From, To float64
	Start    time.Duration
	Length   time.Duration
}

// Rate implements Pattern.
func (r Ramp) Rate(at time.Duration) float64 {
	if at <= r.Start || r.Length <= 0 {
		return r.From
	}
	if at >= r.Start+r.Length {
		return r.To
	}
	f := float64(at-r.Start) / float64(r.Length)
	return r.From + f*(r.To-r.From)
}

// FlashCrowd is a baseline load with a sudden spike of the given
// magnitude and length starting at Start (e.g. a news event).
type FlashCrowd struct {
	Base   float64
	Spike  float64 // absolute rate during the spike
	Start  time.Duration
	Length time.Duration
}

// Rate implements Pattern.
func (f FlashCrowd) Rate(at time.Duration) float64 {
	if at >= f.Start && at < f.Start+f.Length {
		return f.Spike
	}
	return f.Base
}

// Composite sums several patterns.
type Composite []Pattern

// Rate implements Pattern.
func (c Composite) Rate(at time.Duration) float64 {
	s := 0.0
	for _, p := range c {
		s += p.Rate(at)
	}
	return s
}

// Scaled multiplies an inner pattern by Factor.
type Scaled struct {
	Inner  Pattern
	Factor float64
}

// Rate implements Pattern.
func (s Scaled) Rate(at time.Duration) float64 { return s.Factor * s.Inner.Rate(at) }

// Noisy wraps a pattern with deterministic multiplicative noise. The
// noise depends only on the sample time (hashed with the seed), so the
// pattern stays a pure function and replays identically regardless of
// call order.
type Noisy struct {
	Inner Pattern
	Frac  float64 // e.g. 0.1 for ±10%
	Seed  int64
}

// Rate implements Pattern.
func (n Noisy) Rate(at time.Duration) float64 {
	v := n.Inner.Rate(at)
	if n.Frac <= 0 {
		return v
	}
	// splitmix64-style hash of (seed, time) to a uniform in [-1, 1).
	x := uint64(n.Seed)*0x9E3779B97F4A7C15 + uint64(at)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	u := float64(x>>11)/(1<<53)*2 - 1
	return v * (1 + n.Frac*u)
}

// MMPP is a two-state Markov-modulated Poisson process envelope: the rate
// alternates between Low and High with exponentially distributed state
// holding times. The switch schedule is generated lazily and
// deterministically from the seed: the values returned depend only on
// (seed, at), never on call order, and a mutex makes the lazy extension
// safe when scenarios sharing one pattern run in parallel.
type MMPP struct {
	Low, High    float64
	MeanLowHold  time.Duration
	MeanHighHold time.Duration

	seed     int64
	mu       sync.Mutex
	rng      *sim.RNG
	switches []time.Duration // times of state flips, starting in Low
}

// NewMMPP builds an MMPP pattern with its own deterministic stream.
func NewMMPP(low, high float64, meanLow, meanHigh time.Duration, seed int64) *MMPP {
	return &MMPP{
		Low: low, High: high,
		MeanLowHold: meanLow, MeanHighHold: meanHigh,
		seed: seed,
		rng:  sim.NewRNG(seed),
	}
}

// Fingerprint identifies the pattern by its construction parameters; the
// lazily grown switch schedule is derived state and excluded. This feeds
// the harness run cache, which treats equal fingerprints as equal load.
func (m *MMPP) Fingerprint() string {
	return fmt.Sprintf("workload.MMPP{low:%g,high:%g,lowHold:%d,highHold:%d,seed:%d}",
		m.Low, m.High, int64(m.MeanLowHold), int64(m.MeanHighHold), m.seed)
}

// Rate implements Pattern.
func (m *MMPP) Rate(at time.Duration) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.extendTo(at)
	// State = number of switches at or before `at` (binary search not
	// needed; switches are few and appended in order).
	n := 0
	for _, s := range m.switches {
		if s > at {
			break
		}
		n++
	}
	if n%2 == 0 {
		return m.Low
	}
	return m.High
}

func (m *MMPP) extendTo(at time.Duration) {
	last := time.Duration(0)
	if len(m.switches) > 0 {
		last = m.switches[len(m.switches)-1]
	}
	for last <= at {
		mean := m.MeanLowHold
		if len(m.switches)%2 == 1 {
			mean = m.MeanHighHold
		}
		hold := time.Duration(m.rng.Exp(mean.Seconds()) * float64(time.Second))
		if hold < time.Second {
			hold = time.Second
		}
		last += hold
		m.switches = append(m.switches, last)
	}
}

// Validate sanity-checks a pattern over a horizon: rates must be finite
// and non-negative at a coarse sampling.
func Validate(p Pattern, horizon time.Duration) error {
	if p == nil {
		return fmt.Errorf("workload: nil pattern")
	}
	step := horizon / 100
	if step <= 0 {
		step = time.Second
	}
	for at := time.Duration(0); at <= horizon; at += step {
		r := p.Rate(at)
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return fmt.Errorf("workload: invalid rate %v at %v", r, at)
		}
	}
	return nil
}
