package workload

import (
	"time"

	"evolve/internal/cluster"
	"evolve/internal/perf"
	"evolve/internal/plo"
	"evolve/internal/resource"
)

// Archetype identifies a canonical service class; each stresses a
// different bottleneck resource, which is exactly the regime the
// multi-resource controller is designed for (Table 2).
type Archetype int

// The service archetypes used across the evaluation.
const (
	// Web is a CPU-bound request/response service.
	Web Archetype = iota
	// Gateway is a network-bound proxy/API-gateway.
	Gateway
	// KVStore is a disk-I/O-bound storage service with a tail-latency PLO.
	KVStore
	// Inference is a memory-heavy model-serving service.
	Inference
)

// String returns the archetype name.
func (a Archetype) String() string {
	switch a {
	case Web:
		return "web"
	case Gateway:
		return "gateway"
	case KVStore:
		return "kvstore"
	case Inference:
		return "inference"
	default:
		return "unknown"
	}
}

// Archetypes lists all service archetypes.
func Archetypes() []Archetype { return []Archetype{Web, Gateway, KVStore, Inference} }

// Service builds a ServiceSpec for the archetype, sized so that
// initialReplicas at the initial allocation comfortably serve baseRate
// ops/second. The caller may override any field afterwards.
func Service(a Archetype, name string, baseRate float64, initialReplicas int) cluster.ServiceSpec {
	if initialReplicas < 1 {
		initialReplicas = 1
	}
	var (
		model    perf.ServiceModel
		objctv   plo.PLO
		priority = 100
	)
	switch a {
	case Gateway:
		model = perf.ServiceModel{
			BaseLatency:      time.Millisecond,
			DemandPerOp:      resource.New(2, 0, 1e3, 400e3), // 2 mc·s, 400kB net/op
			MemFixed:         128 << 20,
			MemPerConcurrent: 1 << 20,
			MaxLatency:       10 * time.Second,
		}
		objctv = plo.Latency(50 * time.Millisecond)
	case KVStore:
		model = perf.ServiceModel{
			BaseLatency:      500 * time.Microsecond,
			DemandPerOp:      resource.New(3, 0, 500e3, 30e3), // 500kB disk/op
			MemFixed:         1 << 30,
			MemPerConcurrent: 2 << 20,
			MaxLatency:       10 * time.Second,
		}
		objctv = plo.TailLatency(100 * time.Millisecond)
	case Inference:
		model = perf.ServiceModel{
			BaseLatency:      5 * time.Millisecond,
			DemandPerOp:      resource.New(60, 0, 10e3, 100e3), // heavy compute
			MemFixed:         4 << 30,                          // resident model
			MemPerConcurrent: 64 << 20,                         // activation memory
			MaxLatency:       30 * time.Second,
		}
		objctv = plo.Latency(500 * time.Millisecond)
	default: // Web
		model = perf.ServiceModel{
			BaseLatency:      2 * time.Millisecond,
			DemandPerOp:      resource.New(10, 0, 20e3, 50e3),
			MemFixed:         256 << 20,
			MemPerConcurrent: 4 << 20,
			MaxLatency:       30 * time.Second,
		}
		objctv = plo.Latency(100 * time.Millisecond)
	}

	// Initial allocation: analytic right-size for the base rate at 70%
	// utilisation — a reasonable operator guess the controller refines.
	alloc := model.DemandFor(baseRate, initialReplicas, 0.7)
	alloc = alloc.Max(minAllocFor(a))
	return cluster.ServiceSpec{
		Name:            name,
		Model:           model,
		PLO:             objctv,
		InitialReplicas: initialReplicas,
		InitialAlloc:    alloc,
		MinAlloc:        minAllocFor(a),
		// Per-replica ceiling of roughly half a standard node: large
		// enough that vertical scaling does real work, small enough that
		// a max-size replica always remains schedulable.
		MaxAlloc:    resource.New(8000, 32<<30, 500e6, 1e9),
		MaxReplicas: 64,
		Priority:    priority,
	}
}

func minAllocFor(a Archetype) resource.Vector {
	switch a {
	case Inference:
		return resource.New(200, 4<<30, 1e6, 1e6)
	case KVStore:
		return resource.New(100, 1<<30, 5e6, 1e6)
	default:
		return resource.New(50, 128<<20, 1e6, 1e6)
	}
}
