package workload

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"evolve/internal/plo"
	"evolve/internal/resource"
)

func TestConstant(t *testing.T) {
	p := Constant(42)
	if p.Rate(0) != 42 || p.Rate(time.Hour) != 42 {
		t.Error("constant should be constant")
	}
}

func TestDiurnalShape(t *testing.T) {
	d := Diurnal{Trough: 100, Peak: 500, Period: 24 * time.Hour}
	if r := d.Rate(0); math.Abs(r-100) > 1e-9 {
		t.Errorf("trough at t=0: %v", r)
	}
	if r := d.Rate(12 * time.Hour); math.Abs(r-500) > 1e-9 {
		t.Errorf("peak at half period: %v", r)
	}
	if r := d.Rate(6 * time.Hour); math.Abs(r-300) > 1e-9 {
		t.Errorf("midpoint: %v", r)
	}
	// Periodicity.
	if math.Abs(d.Rate(3*time.Hour)-d.Rate(27*time.Hour)) > 1e-9 {
		t.Error("not periodic")
	}
	// Degenerate period.
	if (Diurnal{Trough: 5, Peak: 10}).Rate(time.Hour) != 5 {
		t.Error("zero period should return trough")
	}
}

func TestStepRampFlash(t *testing.T) {
	s := Step{Before: 10, After: 30, At: time.Minute}
	if s.Rate(59*time.Second) != 10 || s.Rate(time.Minute) != 30 {
		t.Error("step wrong")
	}
	r := Ramp{From: 0, To: 100, Start: time.Minute, Length: time.Minute}
	if r.Rate(0) != 0 || r.Rate(90*time.Second) != 50 || r.Rate(3*time.Minute) != 100 {
		t.Errorf("ramp wrong: %v %v %v", r.Rate(0), r.Rate(90*time.Second), r.Rate(3*time.Minute))
	}
	if (Ramp{From: 7, To: 9}).Rate(time.Hour) != 7 {
		t.Error("zero-length ramp should hold From")
	}
	f := FlashCrowd{Base: 50, Spike: 500, Start: time.Minute, Length: 30 * time.Second}
	if f.Rate(0) != 50 || f.Rate(70*time.Second) != 500 || f.Rate(2*time.Minute) != 50 {
		t.Error("flash crowd wrong")
	}
}

func TestCompositeAndScaled(t *testing.T) {
	c := Composite{Constant(10), Constant(5)}
	if c.Rate(0) != 15 {
		t.Errorf("composite = %v", c.Rate(0))
	}
	s := Scaled{Inner: Constant(10), Factor: 2.5}
	if s.Rate(0) != 25 {
		t.Errorf("scaled = %v", s.Rate(0))
	}
	f := Func(func(at time.Duration) float64 { return at.Seconds() })
	if f.Rate(3*time.Second) != 3 {
		t.Error("func adapter wrong")
	}
}

func TestNoisyDeterministicAndBounded(t *testing.T) {
	n := Noisy{Inner: Constant(100), Frac: 0.1, Seed: 7}
	if n.Rate(time.Minute) != n.Rate(time.Minute) {
		t.Error("noise must be a pure function of time")
	}
	other := Noisy{Inner: Constant(100), Frac: 0.1, Seed: 8}
	if n.Rate(time.Minute) == other.Rate(time.Minute) {
		t.Error("different seeds should differ (almost surely)")
	}
	for i := 0; i < 1000; i++ {
		r := n.Rate(time.Duration(i) * time.Second)
		if r < 90-1e-9 || r > 110+1e-9 {
			t.Fatalf("noise out of ±10%%: %v", r)
		}
	}
	if (Noisy{Inner: Constant(5)}).Rate(0) != 5 {
		t.Error("zero frac should pass through")
	}
}

func TestNoisyMeanNearInner(t *testing.T) {
	n := Noisy{Inner: Constant(100), Frac: 0.2, Seed: 99}
	sum := 0.0
	const k = 10000
	for i := 0; i < k; i++ {
		sum += n.Rate(time.Duration(i) * time.Second)
	}
	if m := sum / k; math.Abs(m-100) > 1 {
		t.Errorf("noisy mean = %v, want ≈100", m)
	}
}

func TestMMPPAlternatesDeterministically(t *testing.T) {
	m := NewMMPP(50, 400, 2*time.Minute, 30*time.Second, 11)
	seenLow, seenHigh := false, false
	for at := time.Duration(0); at < time.Hour; at += 5 * time.Second {
		switch m.Rate(at) {
		case 50:
			seenLow = true
		case 400:
			seenHigh = true
		default:
			t.Fatalf("MMPP rate %v not in {50,400}", m.Rate(at))
		}
	}
	if !seenLow || !seenHigh {
		t.Error("MMPP never switched states within an hour")
	}
	// Replay determinism.
	m2 := NewMMPP(50, 400, 2*time.Minute, 30*time.Second, 11)
	for at := time.Duration(0); at < time.Hour; at += 7 * time.Second {
		if m.Rate(at) != m2.Rate(at) {
			t.Fatal("MMPP replay diverged")
		}
	}
}

func TestValidatePattern(t *testing.T) {
	if err := Validate(Constant(5), time.Hour); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
	if err := Validate(nil, time.Hour); err == nil {
		t.Error("nil pattern should fail")
	}
	bad := Func(func(at time.Duration) float64 { return -1 })
	if err := Validate(bad, time.Hour); err == nil {
		t.Error("negative rate should fail")
	}
	nan := Func(func(at time.Duration) float64 { return math.NaN() })
	if err := Validate(nan, time.Hour); err == nil {
		t.Error("NaN rate should fail")
	}
}

func TestServiceArchetypes(t *testing.T) {
	for _, a := range Archetypes() {
		spec := Service(a, a.String()+"-svc", 200, 2)
		if err := spec.Validate(); err != nil {
			t.Errorf("%v spec invalid: %v", a, err)
		}
		// The initial allocation must actually serve the base rate.
		r := spec.Model.Evaluate(200, spec.InitialReplicas, spec.InitialAlloc, 1)
		if r.Saturated {
			t.Errorf("%v: initial allocation saturates at base rate", a)
		}
		var sli float64
		switch spec.PLO.Metric {
		case plo.P99Latency:
			sli = r.P99Latency.Seconds()
		case plo.Throughput:
			sli = r.Throughput
		default:
			sli = r.MeanLatency.Seconds()
		}
		if spec.PLO.Violated(sli) {
			t.Errorf("%v: initial allocation violates its own PLO (sli=%v, plo=%v)", a, sli, spec.PLO)
		}
	}
	if Archetype(99).String() != "unknown" {
		t.Error("unknown archetype string")
	}
}

func TestArchetypeBottlenecksDiffer(t *testing.T) {
	// Drive each archetype to saturation and confirm the binding
	// resource matches its design.
	cases := []struct {
		a     Archetype
		want  resource.Kind
		scale float64 // allocation of the bottleneck kind for 100 op/s
	}{
		{Web, resource.CPU, 1000},       // 10 mc·s/op × 100
		{Gateway, resource.NetIO, 40e6}, // 400 kB/op × 100
		{KVStore, resource.DiskIO, 50e6},
	}
	for _, c := range cases {
		spec := Service(c.a, "x", 100, 1)
		// Generous everywhere except the designed bottleneck, which
		// supports exactly 100 op/s; offered load 150 must bind there.
		alloc := resource.New(16000, 64<<30, 1e9, 2e9).With(c.want, c.scale)
		r := spec.Model.Evaluate(150, 1, alloc, 1)
		if r.Bottleneck != c.want {
			t.Errorf("%v bottleneck = %v, want %v", c.a, r.Bottleneck, c.want)
		}
		if !r.Saturated {
			t.Errorf("%v should saturate at 1.5x the bottleneck capacity", c.a)
		}
	}
	// Inference is memory-resident: its min allocation is large.
	inf := Service(Inference, "inf", 50, 1)
	if inf.MinAlloc[resource.Memory] < float64(4<<30) {
		t.Errorf("inference min memory = %v", inf.MinAlloc[resource.Memory])
	}
}

func TestTraceSampleAndReplay(t *testing.T) {
	p := Diurnal{Trough: 10, Peak: 100, Period: time.Hour}
	tr := Sample(p, time.Hour, time.Minute)
	if len(tr.Points) != 61 {
		t.Fatalf("points = %d, want 61", len(tr.Points))
	}
	// Step replay holds the previous sample.
	if tr.Rate(30*time.Second) != p.Rate(0) {
		t.Errorf("step replay = %v, want %v", tr.Rate(30*time.Second), p.Rate(0))
	}
	if tr.Rate(-time.Second) != p.Rate(0) {
		t.Error("before-first should return first value")
	}
	var empty Trace
	if empty.Rate(0) != 0 {
		t.Error("empty trace rate should be 0")
	}
	if math.Abs(tr.Peak()-100) > 1 {
		t.Errorf("peak = %v", tr.Peak())
	}
	if tr.Mean() <= 10 || tr.Mean() >= 100 {
		t.Errorf("mean = %v", tr.Mean())
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	p := Diurnal{Trough: 10, Peak: 100, Period: time.Hour}
	tr := Sample(p, 10*time.Minute, time.Minute)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != len(tr.Points) {
		t.Fatalf("round trip lost points: %d vs %d", len(got.Points), len(tr.Points))
	}
	for i := range got.Points {
		if got.Points[i].At != tr.Points[i].At {
			t.Errorf("point %d time %v vs %v", i, got.Points[i].At, tr.Points[i].At)
		}
		if math.Abs(got.Points[i].Rate-tr.Points[i].Rate) > 1e-5 {
			t.Errorf("point %d rate %v vs %v", i, got.Points[i].Rate, tr.Points[i].Rate)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"seconds,rate\n",
		"seconds,rate\nx,1\n",
		"seconds,rate\n1,x\n",
		"seconds,rate\n1,-5\n",
		"seconds,rate\n2,1\n1,1\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail: %q", i, c)
		}
	}
}

// Property: Diurnal stays within [Trough, Peak].
func TestDiurnalBoundsProperty(t *testing.T) {
	d := Diurnal{Trough: 20, Peak: 200, Period: 37 * time.Minute}
	prop := func(raw uint32) bool {
		at := time.Duration(raw) * time.Millisecond * 10
		r := d.Rate(at)
		return r >= 20-1e-9 && r <= 200+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestMMPPOrderIndependent: the parallel runner shares one MMPP across
// scenarios, so Rate must depend only on (seed, at) — never on the order
// or interleaving of queries. Run with -race to validate the locking.
func TestMMPPOrderIndependent(t *testing.T) {
	ref := NewMMPP(100, 500, 4*time.Minute, time.Minute, 3)
	want := make([]float64, 200)
	for i := range want {
		want[i] = ref.Rate(time.Duration(i) * 13 * time.Second)
	}
	shared := NewMMPP(100, 500, 4*time.Minute, time.Minute, 3)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the probe points in a different order.
			for i := 0; i < len(want); i++ {
				j := (i*7 + g*13) % len(want)
				if got := shared.Rate(time.Duration(j) * 13 * time.Second); got != want[j] {
					t.Errorf("Rate at probe %d = %v, want %v", j, got, want[j])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
