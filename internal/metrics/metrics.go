// Package metrics provides the telemetry primitives the EVOLVE control
// loops consume: time series with windowed statistics, streaming
// log-bucketed histograms with percentile queries, counters and a named
// registry for experiment snapshots.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Sample is one timestamped observation.
type Sample struct {
	At    time.Duration // virtual time of the observation
	Value float64
}

// Series is an append-only time series. It keeps every sample; experiment
// horizons are short enough (hours of virtual time at seconds-scale
// sampling) that this stays small, and it lets figures re-render any
// window after the fact.
type Series struct {
	Name    string
	samples []Sample

	// Percentile queries sort a window of values; summaries ask for
	// several percentiles (and re-ask across tables sharing a cached
	// run), so the sorted window is memoised per (from, to, len). The
	// mutex only guards the memo: appends stay single-threaded per the
	// owning simulation, but finished runs may be read concurrently by
	// parallel table builders.
	sortMu     sync.Mutex
	sortedFrom time.Duration
	sortedTo   time.Duration
	sortedLen  int
	sorted     []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends an observation. Samples must arrive in non-decreasing time
// order; out-of-order appends panic since they indicate a model bug.
func (s *Series) Add(at time.Duration, v float64) {
	if n := len(s.samples); n > 0 && at < s.samples[n-1].At {
		panic(fmt.Sprintf("metrics: out-of-order sample on %q: %v after %v", s.Name, at, s.samples[n-1].At))
	}
	s.samples = append(s.samples, Sample{at, v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// Samples returns the underlying samples; callers must not modify it.
func (s *Series) Samples() []Sample { return s.samples }

// Last returns the most recent sample, or false when empty.
func (s *Series) Last() (Sample, bool) {
	if len(s.samples) == 0 {
		return Sample{}, false
	}
	return s.samples[len(s.samples)-1], true
}

// Window returns the samples with At in (from, to]. The result is a
// sub-slice of the series' backing array — no copy — so callers must not
// modify it.
func (s *Series) Window(from, to time.Duration) []Sample {
	lo := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].At > from })
	hi := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].At > to })
	return s.samples[lo:hi]
}

// Stats summarises a set of observations.
type Stats struct {
	Count          int
	Mean, Min, Max float64
	Std            float64
}

// WindowStats computes summary statistics over (from, to].
func (s *Series) WindowStats(from, to time.Duration) Stats {
	return computeStats(s.Window(from, to))
}

// AllStats computes summary statistics over the whole series.
func (s *Series) AllStats() Stats { return computeStats(s.samples) }

func computeStats(w []Sample) Stats {
	if len(w) == 0 {
		return Stats{}
	}
	st := Stats{Count: len(w), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range w {
		sum += x.Value
		if x.Value < st.Min {
			st.Min = x.Value
		}
		if x.Value > st.Max {
			st.Max = x.Value
		}
	}
	st.Mean = sum / float64(len(w))
	var ss float64
	for _, x := range w {
		d := x.Value - st.Mean
		ss += d * d
	}
	st.Std = math.Sqrt(ss / float64(len(w)))
	return st
}

// Percentile returns the p-th percentile (0..100) of the window (from, to]
// by exact sort; returns 0 on an empty window. Repeated queries against
// the same window reuse one sorted copy instead of re-sorting per call.
func (s *Series) Percentile(from, to time.Duration, p float64) float64 {
	vals := s.sortedWindow(from, to)
	return percentileSorted(vals, p)
}

// Percentiles evaluates several percentile points against one sorted
// window; the window is sorted at most once.
func (s *Series) Percentiles(from, to time.Duration, ps ...float64) []float64 {
	vals := s.sortedWindow(from, to)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = percentileSorted(vals, p)
	}
	return out
}

// sortedWindow returns the sorted values of (from, to], memoising the
// last window. Appends invalidate the memo via the length check.
func (s *Series) sortedWindow(from, to time.Duration) []float64 {
	s.sortMu.Lock()
	defer s.sortMu.Unlock()
	if s.sorted != nil && s.sortedFrom == from && s.sortedTo == to && s.sortedLen == len(s.samples) {
		return s.sorted
	}
	w := s.Window(from, to)
	vals := make([]float64, len(w))
	for i, x := range w {
		vals[i] = x.Value
	}
	sort.Float64s(vals)
	s.sortedFrom, s.sortedTo, s.sortedLen, s.sorted = from, to, len(s.samples), vals
	return vals
}

func percentileSorted(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	if p <= 0 {
		return vals[0]
	}
	if p >= 100 {
		return vals[len(vals)-1]
	}
	rank := p / 100 * float64(len(vals)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(vals) {
		return vals[len(vals)-1]
	}
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}

// FractionAbove returns the fraction of samples in (from, to] whose value
// exceeds threshold. Used for PLO-violation accounting.
func (s *Series) FractionAbove(from, to time.Duration, threshold float64) float64 {
	w := s.Window(from, to)
	if len(w) == 0 {
		return 0
	}
	n := 0
	for _, x := range w {
		if x.Value > threshold {
			n++
		}
	}
	return float64(n) / float64(len(w))
}

// TimeWeightedMean integrates the series as a step function over
// (from, to] and divides by the span; appropriate for utilisation/
// allocation series that hold a value until the next sample.
func (s *Series) TimeWeightedMean(from, to time.Duration) float64 {
	if to <= from || len(s.samples) == 0 {
		return 0
	}
	// Step value entering the window: the last sample at or before from.
	idx := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].At > from })
	var cur float64
	if idx > 0 {
		cur = s.samples[idx-1].Value
	}
	t := from
	var area float64
	for _, x := range s.samples[idx:] {
		if x.At > to {
			break
		}
		area += cur * float64(x.At-t)
		cur, t = x.Value, x.At
	}
	area += cur * float64(to-t)
	return area / float64(to-from)
}

// Histogram is a streaming log-bucketed histogram for positive values
// (latencies, sizes). Buckets grow geometrically from min to max with the
// given resolution; values outside the range clamp to the end buckets.
type Histogram struct {
	min, max float64
	ratio    float64 // bucket width multiplier
	counts   []uint64
	total    uint64
	sum      float64
	vmin     float64
	vmax     float64
}

// NewHistogram returns a histogram covering [min, max] with bucketsPerDecade
// buckets per factor-of-10. min must be > 0 and max > min.
func NewHistogram(min, max float64, bucketsPerDecade int) *Histogram {
	if min <= 0 || max <= min || bucketsPerDecade <= 0 {
		panic("metrics: invalid histogram parameters")
	}
	ratio := math.Pow(10, 1/float64(bucketsPerDecade))
	n := int(math.Ceil(math.Log(max/min)/math.Log(ratio))) + 1
	return &Histogram{min: min, max: max, ratio: ratio, counts: make([]uint64, n), vmin: math.Inf(1), vmax: math.Inf(-1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.total++
	h.sum += v
	if v < h.vmin {
		h.vmin = v
	}
	if v > h.vmax {
		h.vmax = v
	}
	h.counts[h.bucket(v)]++
}

func (h *Histogram) bucket(v float64) int {
	if v <= h.min {
		return 0
	}
	i := int(math.Log(v/h.min) / math.Log(h.ratio))
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Buckets calls fn for every bucket in ascending order with the bucket's
// inclusive upper edge and the cumulative count up to it — the shape a
// Prometheus histogram exposition needs. The final edge does not cover
// +Inf; callers append that bucket from Count themselves.
func (h *Histogram) Buckets(fn func(le float64, cumulative uint64)) {
	var cum uint64
	for i, c := range h.counts {
		cum += c
		fn(h.min*math.Pow(h.ratio, float64(i+1)), cum)
	}
}

// Mean returns the exact mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min and Max return the exact observed extrema (0 when empty).
func (h *Histogram) Min() float64 {
	if h.total == 0 {
		return 0
	}
	return h.vmin
}

// Max returns the exact maximum observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h.total == 0 {
		return 0
	}
	return h.vmax
}

// Quantile returns the q-th quantile (0..1) with log-bucket resolution.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			// Upper edge of bucket i, clamped to observed max.
			edge := h.min * math.Pow(h.ratio, float64(i+1))
			return math.Min(edge, h.vmax)
		}
	}
	return h.vmax
}

// Reset clears all observations.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum = 0, 0
	h.vmin, h.vmax = math.Inf(1), math.Inf(-1)
}

// Counter is a monotonically increasing event count.
type Counter struct {
	Name string
	n    uint64
}

// Inc adds one. Add adds delta. Value reads the count.
func (c *Counter) Inc()             { c.n++ }
func (c *Counter) Add(delta uint64) { c.n += delta }
func (c *Counter) Value() uint64    { return c.n }

// Registry names and owns a set of series, histograms and counters for one
// simulation run. Name resolution (Series/Histogram/Counter lookup and
// lazy creation) is guarded by a mutex because the sharded kernel's
// parallel tick phases may resolve instruments concurrently; writes to
// a resolved instrument remain single-writer per instrument, which is
// the discipline the tick phases follow.
type Registry struct {
	mu         sync.Mutex
	series     map[string]*Series
	histograms map[string]*Histogram
	counters   map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series:     make(map[string]*Series),
		histograms: make(map[string]*Histogram),
		counters:   make(map[string]*Counter),
	}
}

// Series returns (creating if needed) the named series.
func (r *Registry) Series(name string) *Series {
	r.mu.Lock()
	s, ok := r.series[name]
	if !ok {
		s = NewSeries(name)
		r.series[name] = s
	}
	r.mu.Unlock()
	return s
}

// Histogram returns (creating if needed) the named histogram. The
// parameters are only applied on first creation.
func (r *Registry) Histogram(name string, min, max float64, bucketsPerDecade int) *Histogram {
	r.mu.Lock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(min, max, bucketsPerDecade)
		r.histograms[name] = h
	}
	r.mu.Unlock()
	return h
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{Name: name}
		r.counters[name] = c
	}
	r.mu.Unlock()
	return c
}

// SeriesNames returns the sorted names of all series.
func (r *Registry) SeriesNames() []string {
	names := make([]string, 0, len(r.series))
	for n := range r.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CounterNames returns the sorted names of all counters.
func (r *Registry) CounterNames() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the sorted names of all histograms.
func (r *Registry) HistogramNames() []string {
	names := make([]string, 0, len(r.histograms))
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GetHistogram returns the named histogram without creating it.
func (r *Registry) GetHistogram(name string) (*Histogram, bool) {
	h, ok := r.histograms[name]
	return h, ok
}

// HasSeries reports whether the named series exists without creating it.
func (r *Registry) HasSeries(name string) bool {
	_, ok := r.series[name]
	return ok
}
