package metrics

import (
	"fmt"

	"evolve/internal/ckpt"
)

// Checkpoint serialisation for the telemetry registry. Instruments are
// restored in place when they already exist on the live registry — the
// cluster holds resolved pointers to hot series and counters, so the
// pointers must keep pointing at the restored state — and lazily
// injected otherwise. The percentile memo is deliberately not
// serialised; it rebuilds on first query.

// CkptSave writes every series, histogram and counter in sorted name
// order.
func (r *Registry) CkptSave(w *ckpt.Writer) {
	w.Begin("metrics")
	names := r.SeriesNames()
	w.Int(len(names))
	for _, name := range names {
		s := r.series[name]
		w.Str(name)
		w.Int(len(s.samples))
		for _, sm := range s.samples {
			w.Dur(sm.At)
			w.F64(sm.Value)
		}
	}
	hnames := r.HistogramNames()
	w.Int(len(hnames))
	for _, name := range hnames {
		h := r.histograms[name]
		w.Str(name)
		w.F64(h.min)
		w.F64(h.max)
		w.F64(h.ratio)
		w.Int(len(h.counts))
		for _, c := range h.counts {
			w.U64(c)
		}
		w.U64(h.total)
		w.F64(h.sum)
		w.F64(h.vmin)
		w.F64(h.vmax)
	}
	cnames := r.CounterNames()
	w.Int(len(cnames))
	for _, name := range cnames {
		w.Str(name)
		w.U64(r.counters[name].n)
	}
}

// CkptLoad restores the registry from a checkpoint stream.
func (r *Registry) CkptLoad(cr *ckpt.Reader) error {
	cr.Begin("metrics")
	ns := cr.Int()
	if cr.Err() != nil {
		return cr.Err()
	}
	for i := 0; i < ns; i++ {
		name := cr.Str()
		n := cr.Int()
		if cr.Err() != nil {
			return cr.Err()
		}
		if n < 0 || n > maxCkptSamples {
			return fmt.Errorf("metrics: ckpt: series %q sample count %d out of range", name, n)
		}
		s := r.Series(name)
		samples := make([]Sample, n)
		for j := range samples {
			samples[j].At = cr.Dur()
			samples[j].Value = cr.F64()
		}
		s.samples = samples
		s.sorted, s.sortedLen = nil, 0
	}
	nh := cr.Int()
	if cr.Err() != nil {
		return cr.Err()
	}
	for i := 0; i < nh; i++ {
		name := cr.Str()
		min, max, ratio := cr.F64(), cr.F64(), cr.F64()
		nb := cr.Int()
		if cr.Err() != nil {
			return cr.Err()
		}
		if nb < 0 || nb > maxCkptSamples {
			return fmt.Errorf("metrics: ckpt: histogram %q bucket count %d out of range", name, nb)
		}
		counts := make([]uint64, nb)
		for j := range counts {
			counts[j] = cr.U64()
		}
		h, ok := r.histograms[name]
		if !ok {
			h = &Histogram{}
			r.mu.Lock()
			r.histograms[name] = h
			r.mu.Unlock()
		}
		h.min, h.max, h.ratio, h.counts = min, max, ratio, counts
		h.total = cr.U64()
		h.sum = cr.F64()
		h.vmin = cr.F64()
		h.vmax = cr.F64()
	}
	nc := cr.Int()
	if cr.Err() != nil {
		return cr.Err()
	}
	for i := 0; i < nc; i++ {
		name := cr.Str()
		n := cr.U64()
		r.Counter(name).n = n
	}
	return cr.Err()
}

// maxCkptSamples bounds per-instrument element counts against corrupt
// length prefixes (the checksum catches corruption, but only after the
// stream has been consumed).
const maxCkptSamples = 1 << 28
