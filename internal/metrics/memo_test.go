package metrics

import (
	"math/rand"
	"testing"
	"time"
)

// TestPercentileMemoInvalidation: the sorted-window cache must never
// serve stale data after new samples arrive or when the window moves.
func TestPercentileMemoInvalidation(t *testing.T) {
	s := NewSeries("lat")
	for i := 1; i <= 100; i++ {
		s.Add(sec(float64(i)), float64(101-i)) // descending values
	}
	p1 := s.Percentile(sec(0), sec(100), 50)
	if again := s.Percentile(sec(0), sec(100), 50); again != p1 {
		t.Fatalf("repeat percentile changed: %v vs %v", again, p1)
	}
	// Appending must invalidate the memo even for the same window bounds
	// extended to the new sample.
	s.Add(sec(101), 1000)
	if got := s.Percentile(sec(0), sec(101), 100); got != 1000 {
		t.Errorf("p100 after append = %v, want 1000", got)
	}
	// A different window must not reuse the previous sort.
	if got, want := s.Percentile(sec(90), sec(101), 100), 1000.0; got != want {
		t.Errorf("narrow window p100 = %v, want %v", got, want)
	}
	if got := s.Percentile(sec(0), sec(50), 100); got != 100 {
		t.Errorf("early window p100 = %v, want 100", got)
	}
}

// TestPercentilesMatchesPercentile: the batched form must agree with
// independent calls.
func TestPercentilesMatchesPercentile(t *testing.T) {
	s := NewSeries("lat")
	rng := rand.New(rand.NewSource(1))
	for i := 1; i <= 500; i++ {
		s.Add(sec(float64(i)), rng.Float64()*100)
	}
	ps := []float64{0, 25, 50, 90, 99, 100}
	got := s.Percentiles(sec(100), sec(400), ps...)
	for i, p := range ps {
		if want := s.Percentile(sec(100), sec(400), p); got[i] != want {
			t.Errorf("p%v = %v, want %v", p, got[i], want)
		}
	}
}

func buildBenchSeries(n int) *Series {
	s := NewSeries("bench")
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		s.Add(time.Duration(i)*time.Second, rng.Float64()*100)
	}
	return s
}

// BenchmarkPercentileRepeated is the harness hot path: summarise asks
// for several percentiles over the same measurement window.
func BenchmarkPercentileRepeated(b *testing.B) {
	s := buildBenchSeries(10000)
	from, to := 1000*time.Second, 9000*time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Percentile(from, to, 50)
		_ = s.Percentile(from, to, 95)
		_ = s.Percentile(from, to, 99)
	}
}

// BenchmarkPercentileColdWindow defeats the memo on every call — the
// worst case the cache cannot help.
func BenchmarkPercentileColdWindow(b *testing.B) {
	s := buildBenchSeries(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := time.Duration(i%1000) * time.Second
		_ = s.Percentile(from, from+8000*time.Second, 99)
	}
}

func BenchmarkTimeWeightedMean(b *testing.B) {
	s := buildBenchSeries(10000)
	from, to := 1000*time.Second, 9000*time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.TimeWeightedMean(from, to)
	}
}

func BenchmarkWindowStats(b *testing.B) {
	s := buildBenchSeries(10000)
	from, to := 1000*time.Second, 9000*time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.WindowStats(from, to)
	}
}
