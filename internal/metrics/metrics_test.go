package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

func TestSeriesAddAndWindow(t *testing.T) {
	s := NewSeries("lat")
	for i := 1; i <= 10; i++ {
		s.Add(sec(float64(i)), float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	w := s.Window(sec(3), sec(7))
	if len(w) != 4 || w[0].Value != 4 || w[3].Value != 7 {
		t.Errorf("Window(3,7] = %v", w)
	}
	// Window boundaries: (from, to].
	if len(s.Window(sec(0), sec(1))) != 1 {
		t.Error("to boundary should be inclusive")
	}
	if len(s.Window(sec(10), sec(20))) != 0 {
		t.Error("from boundary should be exclusive")
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	s := NewSeries("x")
	s.Add(sec(5), 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Add should panic")
		}
	}()
	s.Add(sec(4), 2)
}

func TestSeriesLast(t *testing.T) {
	s := NewSeries("x")
	if _, ok := s.Last(); ok {
		t.Error("empty series should have no last")
	}
	s.Add(sec(1), 10)
	s.Add(sec(2), 20)
	last, ok := s.Last()
	if !ok || last.Value != 20 || last.At != sec(2) {
		t.Errorf("Last = %v, %v", last, ok)
	}
}

func TestWindowStats(t *testing.T) {
	s := NewSeries("x")
	for i, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(sec(float64(i)), v)
	}
	st := s.AllStats()
	if st.Count != 8 || st.Mean != 5 || st.Min != 2 || st.Max != 9 {
		t.Errorf("stats = %+v", st)
	}
	if math.Abs(st.Std-2) > 1e-9 {
		t.Errorf("Std = %v, want 2", st.Std)
	}
	empty := s.WindowStats(sec(100), sec(200))
	if empty.Count != 0 || empty.Mean != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestPercentile(t *testing.T) {
	s := NewSeries("x")
	for i := 1; i <= 100; i++ {
		s.Add(sec(float64(i)), float64(i))
	}
	if p := s.Percentile(sec(0), sec(100), 50); math.Abs(p-50.5) > 1e-9 {
		t.Errorf("p50 = %v", p)
	}
	if p := s.Percentile(sec(0), sec(100), 0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := s.Percentile(sec(0), sec(100), 100); p != 100 {
		t.Errorf("p100 = %v", p)
	}
	if p := s.Percentile(sec(200), sec(300), 50); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
}

func TestFractionAbove(t *testing.T) {
	s := NewSeries("x")
	for i := 1; i <= 10; i++ {
		s.Add(sec(float64(i)), float64(i))
	}
	if f := s.FractionAbove(sec(0), sec(10), 7); math.Abs(f-0.3) > 1e-9 {
		t.Errorf("FractionAbove = %v, want 0.3", f)
	}
	if f := s.FractionAbove(sec(0), sec(10), 100); f != 0 {
		t.Errorf("FractionAbove high threshold = %v", f)
	}
	if f := s.FractionAbove(sec(50), sec(60), 0); f != 0 {
		t.Errorf("empty window = %v", f)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	s := NewSeries("alloc")
	s.Add(0, 100)
	s.Add(sec(10), 200) // value 100 for 10s, then 200
	got := s.TimeWeightedMean(0, sec(20))
	if math.Abs(got-150) > 1e-9 {
		t.Errorf("TimeWeightedMean = %v, want 150", got)
	}
	// Window starting mid-way picks up the step value entering the window.
	got = s.TimeWeightedMean(sec(5), sec(15))
	if math.Abs(got-150) > 1e-9 {
		t.Errorf("TimeWeightedMean mid = %v, want 150", got)
	}
	if s.TimeWeightedMean(sec(5), sec(5)) != 0 {
		t.Error("empty span should be 0")
	}
}

func TestTimeWeightedMeanConstantProperty(t *testing.T) {
	// Property: for a constant series the time-weighted mean equals the
	// constant regardless of sample spacing.
	prop := func(raw []uint8, c uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSeries("c")
		v := float64(c)
		at := time.Duration(0)
		s.Add(0, v)
		for _, r := range raw {
			at += time.Duration(r+1) * time.Second
			s.Add(at, v)
		}
		got := s.TimeWeightedMean(0, at+time.Second)
		return math.Abs(got-v) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1e-3, 100, 10)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 100) // 0.01 .. 10
	}
	if h.Count() != 1000 {
		t.Errorf("Count = %d", h.Count())
	}
	if m := h.Mean(); math.Abs(m-5.005) > 1e-9 {
		t.Errorf("Mean = %v", m)
	}
	if h.Min() != 0.01 || h.Max() != 10 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	// Median should be near 5 within one log bucket (~26% at 10/decade).
	q := h.Quantile(0.5)
	if q < 4 || q > 7 {
		t.Errorf("Quantile(0.5) = %v, want ≈5", q)
	}
	// p100 clamps to observed max.
	if q := h.Quantile(1); q != 10 {
		t.Errorf("Quantile(1) = %v, want 10", q)
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(1, 10, 5)
	h.Observe(0.0001)
	h.Observe(1e9)
	if h.Count() != 2 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Max() != 1e9 || h.Min() != 0.0001 {
		t.Error("exact min/max should survive clamping")
	}
}

func TestHistogramEmptyAndReset(t *testing.T) {
	h := NewHistogram(1, 10, 5)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Error("Reset should clear state")
	}
}

func TestHistogramBadParamsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 5) },
		func() { NewHistogram(10, 1, 5) },
		func() { NewHistogram(1, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid params should panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(1e-3, 1e3, 20)
	g := []float64{0.004, 0.05, 0.3, 1.2, 7, 42, 900, 0.02, 0.02, 5}
	for _, v := range g {
		h.Observe(v)
	}
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev-1e-12 {
			t.Fatalf("quantile not monotone at %v: %v < %v", q, cur, prev)
		}
		prev = cur
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Counter = %d", c.Value())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	s1 := r.Series("a")
	s2 := r.Series("a")
	if s1 != s2 {
		t.Error("Series should be idempotent")
	}
	r.Series("b")
	names := r.SeriesNames()
	if !sort.StringsAreSorted(names) || len(names) != 2 {
		t.Errorf("SeriesNames = %v", names)
	}
	if !r.HasSeries("a") || r.HasSeries("zzz") {
		t.Error("HasSeries wrong")
	}
	h1 := r.Histogram("h", 1, 10, 5)
	h2 := r.Histogram("h", 2, 20, 9) // params ignored on reuse
	if h1 != h2 {
		t.Error("Histogram should be idempotent")
	}
	c1 := r.Counter("c")
	c1.Inc()
	if r.Counter("c").Value() != 1 {
		t.Error("Counter should be idempotent")
	}
	if len(r.CounterNames()) != 1 {
		t.Errorf("CounterNames = %v", r.CounterNames())
	}
}

// Property: histogram quantile at q=1 always >= quantile at q=0.
func TestHistogramQuantileOrderProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(0.5, 70000, 10)
		for _, r := range raw {
			h.Observe(float64(r) + 1)
		}
		return h.Quantile(0) <= h.Quantile(0.5) && h.Quantile(0.5) <= h.Quantile(1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
