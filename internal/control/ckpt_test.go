package control

import (
	"bytes"
	"testing"
	"time"

	"evolve/internal/ckpt"
	"evolve/internal/sim"
)

// TestRetryJitterDefaulting: the zero value takes the default fraction,
// JitterNone (and any negative) selects an explicit zero-jitter ladder,
// and explicit positive values pass through. Regression for Jitter: 0
// silently meaning "default" with no way to turn jitter off.
func TestRetryJitterDefaulting(t *testing.T) {
	mk := func(j float64) *Loop {
		eng := sim.NewEngine(1)
		return NewLoop(eng, newFakePlant(eng.Now, "a"), LoopConfig{Retry: RetryConfig{Jitter: j}})
	}
	if got := mk(0).cfg.Retry.Jitter; got != 0.25 {
		t.Errorf("Jitter 0 resolved to %v, want default 0.25", got)
	}
	if got := mk(JitterNone).cfg.Retry.Jitter; got != 0 {
		t.Errorf("JitterNone resolved to %v, want 0", got)
	}
	if got := mk(-3).cfg.Retry.Jitter; got != 0 {
		t.Errorf("negative jitter resolved to %v, want 0", got)
	}
	if got := mk(0.1).cfg.Retry.Jitter; got != 0.1 {
		t.Errorf("explicit jitter 0.1 resolved to %v", got)
	}
}

// timedPlant records the sim time of each successful actuation.
type timedPlant struct {
	*fakePlant
	now     func() time.Duration
	applies []time.Duration
}

func (p *timedPlant) ApplyDecision(app string, d Decision) error {
	err := p.fakePlant.ApplyDecision(app, d)
	if err == nil {
		p.applies = append(p.applies, p.now())
	}
	return err
}

// TestRetryJitterNoneExactBackoff: with JitterNone the retry ladder is
// exactly Base·2ⁿ, independent of the seed.
func TestRetryJitterNoneExactBackoff(t *testing.T) {
	for _, seed := range []int64{1, 99} {
		eng := sim.NewEngine(1)
		plant := &timedPlant{fakePlant: newFakePlant(eng.Now, "a"), now: eng.Now}
		plant.failures["a"] = 2
		l := NewLoop(eng, plant, LoopConfig{
			Interval: time.Minute,
			Seed:     seed,
			Retry:    RetryConfig{MaxAttempts: 3, Base: 2 * time.Second, Cap: 30 * time.Second, Jitter: JitterNone},
		})
		l.Add("a", &countingController{})
		l.Start()
		eng.Run(90 * time.Second)
		// Decision at 60s fails twice: retries at +2s and then +4s.
		want := []time.Duration{66 * time.Second}
		if len(plant.applies) != 1 || plant.applies[0] != want[0] {
			t.Errorf("seed %d: applies at %v, want %v", seed, plant.applies, want)
		}
	}
}

// loopFingerprint captures everything CkptSave covers that the test can
// observe without continuing the run.
func loopFingerprint(l *Loop) (LoopStats, uint64, uint64, map[string]Decision, map[string]string) {
	last := make(map[string]Decision)
	status := make(map[string]string)
	for app, h := range l.ctrl {
		if d, ok := l.lastDecision[app]; ok {
			last[app] = d
		}
		status[app] = h.Status()
	}
	return l.stats, l.rng.Draws(), l.retrySeq, last, status
}

// TestLoopCkptRoundTrip: a loop's full state survives CkptSave/CkptLoad
// into a freshly constructed loop, including retry bookkeeping and the
// jitter RNG position.
func TestLoopCkptRoundTrip(t *testing.T) {
	cfg := LoopConfig{Interval: 30 * time.Second, Seed: 42}
	mk := func() (*sim.Engine, *fakePlant, *Loop) {
		eng := sim.NewEngine(7)
		plant := newFakePlant(eng.Now, "a", "b")
		l := NewLoop(eng, plant, cfg)
		l.Add("a", &countingController{})
		l.Add("b", &countingController{})
		l.Start()
		return eng, plant, l
	}

	eng, plant, l := mk()
	plant.failures["a"] = 5
	eng.Run(10 * time.Minute)

	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	l.CkptSave(w)
	if err := w.Close(); err != nil {
		t.Fatalf("save: %v", err)
	}

	_, _, l2 := mk()
	r, err := ckpt.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	if err := l2.CkptLoad(r); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s1, rng1, seq1, d1, h1 := loopFingerprint(l)
	s2, rng2, seq2, d2, h2 := loopFingerprint(l2)
	if s1 != s2 {
		t.Errorf("stats diverged: %+v vs %+v", s1, s2)
	}
	if rng1 != rng2 {
		t.Errorf("rng position %d vs %d", rng1, rng2)
	}
	if seq1 != seq2 {
		t.Errorf("retrySeq %d vs %d", seq1, seq2)
	}
	for app, d := range d1 {
		if d2[app] != d {
			t.Errorf("lastDecision[%s] %+v vs %+v", app, d, d2[app])
		}
	}
	for app, s := range h1 {
		if h2[app] != s {
			t.Errorf("hardened status[%s] %q vs %q", app, s, h2[app])
		}
	}
}

// TestLoopKillRestart: Kill stops decisions and supersedes in-flight
// retries; LoadState + Restart resumes with the checkpointed controller
// state one interval later.
func TestLoopKillRestart(t *testing.T) {
	eng, plant, l := newTestLoop(t, LoopConfig{Interval: time.Minute, Seed: 3}, "a")
	eng.Run(5 * time.Minute)
	if got := len(plant.applied["a"]); got != 5 {
		t.Fatalf("pre-kill applies = %d, want 5", got)
	}
	blob, err := l.SaveState()
	if err != nil {
		t.Fatalf("SaveState: %v", err)
	}

	l.Kill()
	if !l.Killed() {
		t.Fatal("Killed() false after Kill")
	}
	eng.Run(10 * time.Minute) // dead window: no decisions
	if got := len(plant.applied["a"]); got != 5 {
		t.Fatalf("applies during dead window = %d, want still 5", got)
	}

	if err := l.LoadState(blob); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	l.Restart()
	eng.Run(13 * time.Minute) // restart at 10m: steps at 11m, 12m, 13m
	if got := len(plant.applied["a"]); got != 8 {
		t.Errorf("post-restart applies = %d, want 8", got)
	}
	if s := l.Stats(); s.Decisions != 8 {
		t.Errorf("decisions = %d, want 8", s.Decisions)
	}
}

// TestLoopKillSupersedesRetries: a retry scheduled before Kill fires as
// a no-op after it — the in-flight decision died with the process.
func TestLoopKillSupersedesRetries(t *testing.T) {
	eng, plant, l := newTestLoop(t, LoopConfig{
		Interval: time.Minute,
		Retry:    RetryConfig{MaxAttempts: 3, Base: 30 * time.Second, Cap: time.Minute, Jitter: JitterNone},
	}, "a")
	plant.failures["a"] = 1
	eng.Run(61 * time.Second) // decision at 60s failed; retry armed for ~90s
	l.Kill()
	eng.Run(5 * time.Minute)
	if got := len(plant.applied["a"]); got != 0 {
		t.Errorf("superseded retry landed %d times after Kill", got)
	}
	if len(l.pendingRetries) != 0 {
		t.Errorf("pendingRetries not drained: %v", l.pendingRetries)
	}
}
