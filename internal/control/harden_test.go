package control

import (
	"strings"
	"testing"

	"evolve/internal/resource"
)

// countingController scales by +1 replica every sighted decision, so the
// tests can see exactly when the inner controller ran.
type countingController struct {
	calls int
}

func (c *countingController) Name() string { return "counting" }

func (c *countingController) Decide(o Observation) Decision {
	c.calls++
	return Decision{Replicas: o.Replicas + 1, Alloc: o.Alloc}
}

func sighted(replicas int) Observation {
	return Observation{
		App: "web", Replicas: replicas, ReadyReplicas: replicas,
		Alloc:   resource.New(1000, 1<<30, 1e6, 1e6),
		Samples: 4, ExpectedSamples: 4,
	}
}

func blind(replicas int) Observation {
	o := sighted(replicas)
	o.Samples, o.StaleSamples = 0, 0
	return o
}

func TestObservationBlind(t *testing.T) {
	cases := []struct {
		samples, expected, stale int
		want                     bool
	}{
		{4, 4, 0, false}, // healthy
		{0, 4, 0, true},  // all dropped
		{4, 4, 4, true},  // all frozen substitutes
		{2, 4, 1, false}, // partial but usable
		{0, 0, 0, false}, // window spanned no metric ticks: not evidence of blindness
		{4, 4, 3, false}, // one fresh sample is enough
	}
	for _, c := range cases {
		o := Observation{Samples: c.samples, ExpectedSamples: c.expected, StaleSamples: c.stale}
		if got := o.Blind(); got != c.want {
			t.Errorf("Blind(samples=%d expected=%d stale=%d) = %v, want %v",
				c.samples, c.expected, c.stale, got, c.want)
		}
	}
}

// TestHardenedSightedPassthrough: with healthy telemetry the wrapper is
// transparent and reports no status.
func TestHardenedSightedPassthrough(t *testing.T) {
	inner := &countingController{}
	h := Harden(inner, HardenConfig{})
	for i := 0; i < 5; i++ {
		d := h.Decide(sighted(3))
		if d.Replicas != 4 {
			t.Fatalf("decision %d: Replicas = %d, want 4 (inner passthrough)", i, d.Replicas)
		}
	}
	if inner.calls != 5 {
		t.Errorf("inner ran %d times, want 5", inner.calls)
	}
	if h.Degraded() || h.BlindPeriods() != 0 || h.Status() != "" {
		t.Errorf("healthy wrapper reports degraded=%v blind=%d status=%q",
			h.Degraded(), h.BlindPeriods(), h.Status())
	}
}

// TestHardenedBlindFreezesInner: blind periods within the budget hold in
// place without consulting the inner controller (integral freeze), and
// sight restores normal operation.
func TestHardenedBlindFreezesInner(t *testing.T) {
	inner := &countingController{}
	h := Harden(inner, HardenConfig{MaxBlind: 3})
	h.Decide(sighted(3)) // prime lastSafe at 4 replicas

	for i := 0; i < 3; i++ {
		d := h.Decide(blind(4))
		if d.Replicas != 4 {
			t.Fatalf("blind period %d: Replicas = %d, want hold at 4", i+1, d.Replicas)
		}
		if h.Degraded() {
			t.Fatalf("degraded after %d blind periods, budget is 3", i+1)
		}
	}
	if inner.calls != 1 {
		t.Errorf("inner ran %d times during blindness, want 1 (frozen)", inner.calls)
	}
	if !strings.Contains(h.Status(), "integral frozen") {
		t.Errorf("status = %q, want integral-frozen notice", h.Status())
	}

	d := h.Decide(sighted(4))
	if d.Replicas != 5 || inner.calls != 2 {
		t.Errorf("after recovery: Replicas = %d (want 5), inner calls = %d (want 2)", d.Replicas, inner.calls)
	}
	if h.BlindPeriods() != 0 || h.Degraded() {
		t.Errorf("recovery did not reset health: blind=%d degraded=%v", h.BlindPeriods(), h.Degraded())
	}
	if !strings.Contains(h.Status(), "recovered") {
		t.Errorf("status after recovery = %q, want recovery notice", h.Status())
	}
}

// TestHardenedDegradesToLastSafe: past the budget the wrapper enters
// degraded mode and never scales below the last sighted decision, even
// if the plant has meanwhile drifted lower.
func TestHardenedDegradesToLastSafe(t *testing.T) {
	inner := &countingController{}
	h := Harden(inner, HardenConfig{MaxBlind: 2})
	h.Decide(sighted(5)) // lastSafe: 6 replicas

	// Plant drifts down to 2 replicas while the controller is blind.
	var d Decision
	for i := 0; i < 4; i++ {
		d = h.Decide(blind(2))
	}
	if !h.Degraded() {
		t.Fatal("not degraded after 4 blind periods with budget 2")
	}
	if d.Replicas != 6 {
		t.Errorf("degraded Replicas = %d, want 6 (last safe), not the drifted 2", d.Replicas)
	}
	if inner.calls != 1 {
		t.Errorf("inner ran %d times, want 1", inner.calls)
	}
	if !strings.Contains(h.Status(), "degraded") {
		t.Errorf("status = %q, want degraded notice", h.Status())
	}

	// Degraded alloc is the component-wise max of current and last safe.
	o := blind(2)
	o.Alloc = resource.New(500, 2<<30, 1e6, 1e6) // cpu below safe, memory above
	d = h.Decide(o)
	safe := resource.New(1000, 1<<30, 1e6, 1e6)
	if d.Alloc[resource.CPU] != safe[resource.CPU] {
		t.Errorf("degraded cpu = %v, want last-safe %v", d.Alloc[resource.CPU], safe[resource.CPU])
	}
	if d.Alloc[resource.Memory] != float64(2<<30) {
		t.Errorf("degraded memory = %v, want current %v (max wins)", d.Alloc[resource.Memory], float64(2<<30))
	}
}

// TestHardenedDegradedWithoutSafePoint: a wrapper that was never sighted
// can only hold in place.
func TestHardenedDegradedWithoutSafePoint(t *testing.T) {
	h := Harden(&countingController{}, HardenConfig{MaxBlind: 1})
	var d Decision
	for i := 0; i < 3; i++ {
		d = h.Decide(blind(2))
	}
	if !h.Degraded() || d.Replicas != 2 {
		t.Errorf("degraded=%v Replicas=%d, want degraded hold at 2", h.Degraded(), d.Replicas)
	}
}
