package control

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"evolve/internal/ckpt"
	"evolve/internal/resource"
)

// StateSaver is implemented by controllers with internal state that must
// survive a checkpoint (PID integrals, usage histories, learned models).
// Controllers that do not implement it are treated as stateless; a
// stateful controller without it restores cold, which breaks the
// byte-identical-resume invariant — implement it.
type StateSaver interface {
	CkptSave(w *ckpt.Writer)
	CkptLoad(r *ckpt.Reader) error
}

func saveDecision(w *ckpt.Writer, d Decision) {
	w.Int(d.Replicas)
	d.Alloc.CkptSave(w)
}

func loadDecision(r *ckpt.Reader) Decision {
	return Decision{Replicas: r.Int(), Alloc: resource.LoadVector(r)}
}

// ckptSaveHardened writes the degraded-mode wrapper plus its inner
// controller's state.
func (h *Hardened) ckptSave(w *ckpt.Writer) {
	w.Int(h.blind)
	w.Bool(h.degraded)
	saveDecision(w, h.lastSafe)
	w.Bool(h.haveSafe)
	w.Str(h.status)
	if s, ok := h.inner.(StateSaver); ok {
		w.Bool(true)
		s.CkptSave(w)
	} else {
		w.Bool(false)
	}
}

func (h *Hardened) ckptLoad(r *ckpt.Reader) error {
	h.blind = r.Int()
	h.degraded = r.Bool()
	h.lastSafe = loadDecision(r)
	h.haveSafe = r.Bool()
	h.status = r.Str()
	hasState := r.Bool()
	s, ok := h.inner.(StateSaver)
	if r.Err() != nil {
		return r.Err()
	}
	if hasState != ok {
		return fmt.Errorf("control: ckpt: controller %s state presence mismatch", h.inner.Name())
	}
	if hasState {
		return s.CkptLoad(r)
	}
	return nil
}

// apps returns the loop's app names in sorted order.
func (l *Loop) apps() []string {
	names := make([]string, 0, len(l.ctrl))
	for app := range l.ctrl {
		names = append(names, app)
	}
	sort.Strings(names)
	return names
}

// saveCtrlState writes the controller-process state: what the control
// plane's own checkpoint would hold. Deliberately excludes live-timer
// bookkeeping (retry generations, pending retries) and the jitter RNG
// position — those belong to the world timeline, not the process.
func (l *Loop) saveCtrlState(w *ckpt.Writer) {
	w.Begin("loop-ctrl")
	apps := l.apps()
	w.Int(len(apps))
	for _, app := range apps {
		w.Str(app)
		l.ctrl[app].ckptSave(w)
		d, ok := l.lastDecision[app]
		w.Bool(ok)
		if ok {
			saveDecision(w, d)
		}
		w.Int(l.prevAdapts[app])
		w.Str(l.lastRationale[app])
		since, ok := l.degradedSince[app]
		w.Bool(ok)
		if ok {
			w.Dur(since)
		}
	}
}

func (l *Loop) loadCtrlState(r *ckpt.Reader) error {
	r.Begin("loop-ctrl")
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(l.ctrl) {
		return fmt.Errorf("control: ckpt: %d apps in checkpoint, loop has %d", n, len(l.ctrl))
	}
	for i := 0; i < n; i++ {
		app := r.Str()
		h, ok := l.ctrl[app]
		if r.Err() != nil {
			return r.Err()
		}
		if !ok {
			return fmt.Errorf("control: ckpt: unknown app %q", app)
		}
		if err := h.ckptLoad(r); err != nil {
			return err
		}
		if r.Bool() {
			l.lastDecision[app] = loadDecision(r)
		} else {
			delete(l.lastDecision, app)
		}
		if v := r.Int(); v != 0 {
			l.prevAdapts[app] = v
		} else {
			delete(l.prevAdapts, app)
		}
		if s := r.Str(); s != "" {
			l.lastRationale[app] = s
		} else {
			delete(l.lastRationale, app)
		}
		if r.Bool() {
			l.degradedSince[app] = r.Dur()
		} else {
			delete(l.degradedSince, app)
		}
	}
	return r.Err()
}

// CkptSave writes the loop's full state into a world checkpoint:
// controller-process state plus the world-timeline bookkeeping (jitter
// RNG position, retry generations, pending retry descriptors, stats).
func (l *Loop) CkptSave(w *ckpt.Writer) {
	w.Begin("loop")
	l.saveCtrlState(w)
	w.U64(l.rng.Draws())
	gens := make([]string, 0, len(l.retryGen))
	for app := range l.retryGen {
		gens = append(gens, app)
	}
	sort.Strings(gens)
	w.Int(len(gens))
	for _, app := range gens {
		w.Str(app)
		w.U64(l.retryGen[app])
	}
	keys := make([]string, 0, len(l.pendingRetries))
	for k := range l.pendingRetries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		e := l.pendingRetries[k]
		w.Str(k)
		w.Str(e.app)
		saveDecision(w, e.d)
		w.Int(e.attempt)
		w.U64(e.gen)
	}
	w.U64(l.retrySeq)
	w.U64(l.stats.Decisions)
	w.U64(l.stats.DegradedPeriods)
	w.U64(l.stats.DegradedTransitions)
	w.U64(l.stats.Retries)
	w.U64(l.stats.Abandoned)
	w.Bool(l.started)
	w.Bool(l.killed)
}

// CkptLoad restores the loop's full state from a world checkpoint.
func (l *Loop) CkptLoad(r *ckpt.Reader) error {
	r.Begin("loop")
	if err := l.loadCtrlState(r); err != nil {
		return err
	}
	l.rng.Burn(r.U64())
	ng := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	l.retryGen = make(map[string]uint64, ng)
	for i := 0; i < ng; i++ {
		app := r.Str()
		l.retryGen[app] = r.U64()
	}
	np := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	l.pendingRetries = make(map[string]retryEntry, np)
	for i := 0; i < np; i++ {
		k := r.Str()
		e := retryEntry{app: r.Str(), d: loadDecision(r), attempt: r.Int(), gen: r.U64()}
		l.pendingRetries[k] = e
	}
	l.retrySeq = r.U64()
	l.stats.Decisions = r.U64()
	l.stats.DegradedPeriods = r.U64()
	l.stats.DegradedTransitions = r.U64()
	l.stats.Retries = r.U64()
	l.stats.Abandoned = r.U64()
	l.started = r.Bool()
	l.killed = r.Bool()
	return r.Err()
}

// RebuildTimer returns the callback for a checkpointed loop timer, keyed
// by its tag: "retry"/<key> timers replay their pending-retry
// descriptor. The world restorer calls this for loop-owned tags that had
// no fresh-world counterpart.
func (l *Loop) RebuildTimer(kind, key string) (func(), error) {
	if kind != "retry" {
		return nil, fmt.Errorf("control: no rebuilder for timer kind %q", kind)
	}
	e, ok := l.pendingRetries[key]
	if !ok {
		return nil, fmt.Errorf("control: pending retry %q not in checkpoint state", key)
	}
	return func() {
		delete(l.pendingRetries, key)
		if l.retryGen[e.app] != e.gen {
			return
		}
		l.actuate(e.app, e.d, e.attempt+1, e.gen)
	}, nil
}

// SaveState serialises the controller-process state alone — the blob the
// ctrl-crash recovery path hands back to Restart via LoadState. It
// models the control plane's own checkpoint file: controllers, health
// wrappers and last decisions, but nothing about world-timeline timers.
func (l *Loop) SaveState() ([]byte, error) {
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	l.saveCtrlState(w)
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadState restores controller-process state from a SaveState blob; the
// ctrl-crash restore path calls it just before Restart.
func (l *Loop) LoadState(blob []byte) error {
	r, err := ckpt.NewReader(bytes.NewReader(blob))
	if err != nil {
		return err
	}
	if err := l.loadCtrlState(r); err != nil {
		return err
	}
	return r.Close()
}

// Interval returns the loop's control period (used by recovery-time
// accounting in the harness).
func (l *Loop) Interval() time.Duration { return l.cfg.Interval }
