// Package control defines the contract between the cluster substrate and
// the resource controllers (the EVOLVE core and every baseline): what a
// controller observes about an application each control period, and what
// it is allowed to decide. Keeping this boundary narrow means every
// controller — PID, threshold, percentile, static — is interchangeable in
// the harness and the comparison experiments stay honest.
package control

import (
	"errors"
	"time"

	"evolve/internal/obs"
	"evolve/internal/plo"
	"evolve/internal/resource"
)

// Limits bound what a controller may request for one application; they
// correspond to the namespace quotas / LimitRanges an operator would set.
type Limits struct {
	MinAlloc    resource.Vector // per-replica floor
	MaxAlloc    resource.Vector // per-replica ceiling
	MinReplicas int
	MaxReplicas int
}

// Clamp restricts a decision to the limits.
func (l Limits) Clamp(d Decision) Decision {
	if d.Replicas < l.MinReplicas {
		d.Replicas = l.MinReplicas
	}
	if l.MaxReplicas > 0 && d.Replicas > l.MaxReplicas {
		d.Replicas = l.MaxReplicas
	}
	d.Alloc = d.Alloc.Clamp(l.MinAlloc, l.MaxAlloc)
	return d
}

// Observation is everything a controller learns about one application at
// one control period. All SLI values are aggregated over the period.
type Observation struct {
	App      string
	Now      time.Duration
	Interval time.Duration

	PLO plo.PLO
	// SLI is the measured value of the PLO's metric (seconds for latency
	// metrics, ops/second for throughput).
	SLI float64
	// MeanLatency/P99Latency/Throughput give the full picture regardless
	// of which metric the PLO constrains (seconds, seconds, ops/sec).
	MeanLatency float64
	P99Latency  float64
	Throughput  float64
	// OfferedLoad is the measured arrival rate (ops/sec).
	OfferedLoad float64
	// Saturated reports whether the service ran beyond capacity at any
	// point in the period; usage-derived statistics are biased then.
	Saturated bool

	// Observation health: how much telemetry actually arrived this
	// period. ExpectedSamples counts the metric ticks the window spanned;
	// Samples the ones that were delivered; StaleSamples how many of the
	// delivered ones were stale substitutes (frozen sensor readings). A
	// fault-free window has Samples == ExpectedSamples and no stale ones.
	Samples         int
	ExpectedSamples int
	StaleSamples    int

	// Replicas is the desired replica count; ReadyReplicas the number
	// currently running.
	Replicas      int
	ReadyReplicas int
	// Alloc is the current per-replica allocation; Usage the mean
	// per-replica usage over the period; Utilisation is Usage/Alloc.
	Alloc       resource.Vector
	Usage       resource.Vector
	Utilisation resource.Vector

	Limits Limits
}

// PerfError returns the normalised PLO error for this observation:
// positive when the application needs more resources.
func (o Observation) PerfError() float64 { return o.PLO.Error(o.SLI) }

// Blind reports whether the window carried no usable telemetry: every
// expected sample was either dropped or a stale substitute. Deciding on
// a blind observation means deciding on noise; the Hardened wrapper
// freezes the controller instead.
func (o Observation) Blind() bool {
	return o.ExpectedSamples > 0 && o.Samples-o.StaleSamples <= 0
}

// Decision is what a controller wants the cluster to converge to.
type Decision struct {
	// Replicas is the desired replica count (horizontal).
	Replicas int
	// Alloc is the desired per-replica allocation (vertical).
	Alloc resource.Vector
}

// Hold returns the no-change decision for an observation.
func Hold(o Observation) Decision {
	return Decision{Replicas: o.Replicas, Alloc: o.Alloc}
}

// Controller decides resource assignments for one application. A
// controller instance is bound to a single application; it may keep
// per-app state (PID integrals, usage histories) between calls.
type Controller interface {
	// Name identifies the policy for tables and logs.
	Name() string
	// Decide maps the current observation to the next decision. The
	// caller clamps the result to the observation's Limits.
	Decide(Observation) Decision
}

// Factory builds a fresh controller for an application; the harness uses
// one factory per policy under comparison.
type Factory func(app string) Controller

// Explainer is optionally implemented by controllers that can explain
// their most recent decision in one line (for event journals and logs).
type Explainer interface {
	Rationale() string
}

// Traceable is optionally implemented by controllers that can expose the
// internal decomposition of their most recent decision — PID terms,
// gains, the stage that drove the change — for the trace and the
// /debug/controllers endpoint.
type Traceable interface {
	DecisionTrace() obs.ControlTrace
}

// TraceDecision records one control step onto the tracer: a "decide"
// event built from the observation/decision pair, with the controller's
// decomposition attached when it is Traceable, plus an "adapt" event
// when the adaptive-gain count advanced since prevAdapts. It returns the
// new adaptation count for the caller to carry into the next period.
// Cheap no-op when the tracer is disabled.
func TraceDecision(tr *obs.Tracer, o Observation, d Decision, c Controller, prevAdapts int) int {
	if !tr.Enabled() {
		return prevAdapts
	}
	ev, adapts := decideEvent(o, d, c, prevAdapts)
	tr.Record(ev)
	if adapts > prevAdapts {
		tr.Record(adaptEvent(ev))
	}
	return adapts
}

// decideEvent builds the "decide" trace event for one control step and
// returns it with the controller's adaptation count (prevAdapts when the
// controller is not Traceable). Pure value construction — no tracer
// access, no controller mutation beyond the Rationale/DecisionTrace
// reads — so the parallel evaluate phase can call it from workers and
// hand the events to the serial apply phase for recording.
func decideEvent(o Observation, d Decision, c Controller, prevAdapts int) (obs.Event, int) {
	ev := obs.Event{
		At:          o.Now,
		Kind:        obs.KindControl,
		Verb:        obs.VerbDecide,
		App:         o.App,
		PerfErr:     o.PerfError(),
		SLI:         o.SLI,
		Objective:   o.PLO.Target,
		Offered:     o.OfferedLoad,
		Replicas:    o.Replicas,
		Ready:       o.ReadyReplicas,
		NewReplicas: d.Replicas,
		Alloc:       o.Alloc,
		NewAlloc:    d.Alloc,
		Util:        o.Utilisation,
	}
	if ex, ok := c.(Explainer); ok {
		ev.Detail = ex.Rationale()
	}
	adapts := prevAdapts
	if t, ok := c.(Traceable); ok {
		ev.HasCtrl = true
		ev.Ctrl = t.DecisionTrace()
		adapts = ev.Ctrl.Adaptations
	}
	return ev, adapts
}

// adaptEvent derives the gain-adaptation event that accompanies a decide
// event whose adaptation count advanced.
func adaptEvent(ev obs.Event) obs.Event {
	return obs.Event{
		At:      ev.At,
		Kind:    obs.KindGain,
		Verb:    obs.VerbAdapt,
		App:     ev.App,
		HasCtrl: ev.HasCtrl,
		Ctrl:    ev.Ctrl,
	}
}

// IsTransient reports whether an actuation error is retryable: the error
// (or one it wraps) implements Transient() bool and returns true.
// Injected chaos rejections are transient; a controller handing the
// cluster an invalid decision is not.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// NoopController holds the current state forever; useful as a fallback
// when a policy has no knowledge of an application.
type NoopController struct{}

// Name implements Controller.
func (NoopController) Name() string { return "noop" }

// Decide implements Controller.
func (NoopController) Decide(o Observation) Decision { return Hold(o) }
