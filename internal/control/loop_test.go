package control

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"evolve/internal/obs"
	"evolve/internal/sim"
)

// fakePlant is a scriptable plant: per-app observation templates, a
// settable blind window, and a failure budget for ApplyDecision.
type fakePlant struct {
	apps    []string
	now     func() time.Duration
	blind   map[string]bool
	applied map[string][]Decision
	// failures is the number of upcoming ApplyDecision calls (per app)
	// that fail transiently; fatalErr, when set, fails them permanently.
	failures map[string]int
	fatalErr error
	observes int
	events   []string
}

func newFakePlant(now func() time.Duration, apps ...string) *fakePlant {
	return &fakePlant{
		apps: apps, now: now,
		blind:    make(map[string]bool),
		applied:  make(map[string][]Decision),
		failures: make(map[string]int),
	}
}

func (p *fakePlant) Apps() []string { return p.apps }

func (p *fakePlant) Observe(app string) (Observation, error) {
	p.observes++
	o := sighted(3)
	o.App, o.Now = app, p.now()
	if p.blind[app] {
		o.Samples = 0
	}
	return o, nil
}

func (p *fakePlant) ApplyDecision(app string, d Decision) error {
	if p.fatalErr != nil {
		return p.fatalErr
	}
	if p.failures[app] > 0 {
		p.failures[app]--
		return transientErr{app}
	}
	p.applied[app] = append(p.applied[app], d)
	return nil
}

func (p *fakePlant) RecordEvent(kind, object, message string) {
	p.events = append(p.events, kind+"/"+object+": "+message)
}

type transientErr struct{ app string }

func (e transientErr) Error() string   { return "injected flake for " + e.app }
func (e transientErr) Transient() bool { return true }

func TestIsTransient(t *testing.T) {
	if !IsTransient(transientErr{"a"}) {
		t.Error("direct transient error not recognised")
	}
	if !IsTransient(fmt.Errorf("wrap: %w", transientErr{"a"})) {
		t.Error("wrapped transient error not recognised")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error misclassified as transient")
	}
	if IsTransient(nil) {
		t.Error("nil misclassified as transient")
	}
}

func newTestLoop(t *testing.T, cfg LoopConfig, apps ...string) (*sim.Engine, *fakePlant, *Loop) {
	t.Helper()
	eng := sim.NewEngine(1)
	plant := newFakePlant(eng.Now, apps...)
	l := NewLoop(eng, plant, cfg)
	for _, app := range apps {
		l.Add(app, &countingController{})
	}
	l.OnFatal(func(err error) { t.Fatalf("loop fatal: %v", err) })
	l.Start()
	return eng, plant, l
}

// TestLoopDrivesControllers: the loop observes, decides and actuates
// every app each period, in app order.
func TestLoopDrivesControllers(t *testing.T) {
	eng, plant, l := newTestLoop(t, LoopConfig{Interval: 15 * time.Second}, "a", "b")
	eng.Run(time.Minute) // periods at 15s, 30s, 45s, 60s

	if got := len(plant.applied["a"]); got != 4 {
		t.Errorf("app a actuated %d times, want 4", got)
	}
	if got := len(plant.applied["b"]); got != 4 {
		t.Errorf("app b actuated %d times, want 4", got)
	}
	if s := l.Stats(); s.Decisions != 8 || s.Retries != 0 || s.DegradedPeriods != 0 {
		t.Errorf("stats = %+v, want 8 clean decisions", s)
	}
	d, ok := l.LastDecision("a")
	if !ok || d.Replicas != 4 {
		t.Errorf("LastDecision(a) = %+v, %v; want 4 replicas", d, ok)
	}
	if c, ok := l.Controller("a"); !ok || c.Name() != "counting" {
		t.Errorf("Controller(a) = %v, %v", c, ok)
	}
}

// TestLoopRetriesTransientFailures: a transient actuation failure is
// retried with backoff and eventually lands; stats count the retries.
func TestLoopRetriesTransientFailures(t *testing.T) {
	tr := obs.New(256)
	eng, plant, l := newTestLoop(t, LoopConfig{
		Interval: time.Minute,
		Retry:    RetryConfig{MaxAttempts: 3, Base: time.Second, Cap: 10 * time.Second, Jitter: 0.1},
	}, "a")
	l.SetTracer(tr)
	plant.failures["a"] = 2 // first period: fail twice, then succeed

	eng.Run(90 * time.Second) // one control period plus retry room
	if got := len(plant.applied["a"]); got != 1 {
		t.Fatalf("applied %d decisions, want 1 (after retries)", got)
	}
	if s := l.Stats(); s.Retries != 2 || s.Abandoned != 0 {
		t.Errorf("stats = %+v, want 2 retries, 0 abandoned", s)
	}
	if evs := tr.Snapshot(obs.Filter{Kind: "fault", Verb: obs.VerbRetry}); len(evs) != 2 {
		t.Errorf("traced %d retry events, want 2", len(evs))
	}
}

// TestLoopAbandonsAfterBudget: persistent failures exhaust the retry
// ladder and are abandoned, not retried forever.
func TestLoopAbandonsAfterBudget(t *testing.T) {
	tr := obs.New(256)
	eng, plant, l := newTestLoop(t, LoopConfig{
		Interval: time.Hour, // one period only
		Retry:    RetryConfig{MaxAttempts: 2, Base: time.Second, Cap: 10 * time.Second, Jitter: 0.1},
	}, "a")
	l.SetTracer(tr)
	plant.failures["a"] = 100

	eng.Run(90 * time.Minute)
	if got := len(plant.applied["a"]); got != 0 {
		t.Fatalf("applied %d decisions, want 0", got)
	}
	if s := l.Stats(); s.Abandoned != 1 || s.Retries != 2 {
		t.Errorf("stats = %+v, want 2 retries then 1 abandon", s)
	}
	if evs := tr.Snapshot(obs.Filter{Kind: "fault", Verb: obs.VerbAbandon}); len(evs) != 1 {
		t.Errorf("traced %d abandon events, want 1", len(evs))
	}
}

// TestLoopRetrySuperseded: a pending retry is dropped when the next
// control period takes a fresh decision for the app.
func TestLoopRetrySuperseded(t *testing.T) {
	eng, plant, l := newTestLoop(t, LoopConfig{
		Interval: 10 * time.Second,
		// Base backoff longer than the control period: the retry always
		// lands after the next decision and must yield to it.
		Retry: RetryConfig{MaxAttempts: 3, Base: 30 * time.Second, Cap: time.Minute, Jitter: 0.01},
	}, "a")
	plant.failures["a"] = 1

	eng.Run(2 * time.Minute)
	s := l.Stats()
	if s.Retries != 1 {
		t.Errorf("retries = %d, want 1", s.Retries)
	}
	// 12 periods, first failed and its retry was superseded: 11 applies.
	if got := len(plant.applied["a"]); got != 11 {
		t.Errorf("applied %d decisions, want 11 (superseded retry never lands)", got)
	}
}

// TestLoopFatalOnPermanentError: non-transient actuation errors go to
// the fatal handler instead of the retry ladder.
func TestLoopFatalOnPermanentError(t *testing.T) {
	eng := sim.NewEngine(1)
	plant := newFakePlant(eng.Now, "a")
	plant.fatalErr = errors.New("invalid decision")
	l := NewLoop(eng, plant, LoopConfig{Interval: time.Minute})
	l.Add("a", &countingController{})
	var fatal error
	l.OnFatal(func(err error) { fatal = err; eng.Stop() })
	l.Start()
	eng.Run(5 * time.Minute)
	if fatal == nil || !strings.Contains(fatal.Error(), "invalid decision") {
		t.Fatalf("fatal = %v, want wrapped permanent error", fatal)
	}
	if s := l.Stats(); s.Retries != 0 {
		t.Errorf("permanent error was retried %d times", s.Retries)
	}
}

// TestLoopDegradedTransitions: blinding the plant past the budget emits
// one degraded event (trace + journal), holds capacity, and restoring
// sight emits the recovery event.
func TestLoopDegradedTransitions(t *testing.T) {
	tr := obs.New(256)
	eng, plant, l := newTestLoop(t, LoopConfig{
		Interval: time.Minute,
		Harden:   HardenConfig{MaxBlind: 2},
	}, "a")
	l.SetTracer(tr)

	eng.Run(2 * time.Minute) // two sighted periods
	plant.blind["a"] = true
	eng.Run(8 * time.Minute) // six blind periods: degraded from the third
	plant.blind["a"] = false
	eng.Run(10 * time.Minute)

	s := l.Stats()
	if s.DegradedTransitions != 1 {
		t.Errorf("DegradedTransitions = %d, want 1", s.DegradedTransitions)
	}
	if s.DegradedPeriods != 4 {
		t.Errorf("DegradedPeriods = %d, want 4 (blind periods 3..6)", s.DegradedPeriods)
	}
	if deg := tr.Snapshot(obs.Filter{Kind: "fault", Verb: obs.VerbDegraded}); len(deg) != 1 {
		t.Errorf("traced %d degraded events, want 1", len(deg))
	}
	if rec := tr.Snapshot(obs.Filter{Kind: "fault", Verb: obs.VerbRecovered}); len(rec) != 1 {
		t.Errorf("traced %d recovered events, want 1", len(rec))
	}
	var journaled bool
	for _, e := range plant.events {
		if strings.HasPrefix(e, "degraded-mode/a") {
			journaled = true
		}
	}
	if !journaled {
		t.Errorf("no degraded-mode journal entry; events: %v", plant.events)
	}
	if h, ok := l.Hardened("a"); !ok || h.Degraded() {
		t.Errorf("Hardened(a) = %v degraded=%v after recovery", ok, h != nil && h.Degraded())
	}
}

// TestLoopDeterministic: two identically-seeded loops over flaky plants
// produce identical decision/retry sequences.
func TestLoopDeterministic(t *testing.T) {
	run := func() (LoopStats, []Decision) {
		eng := sim.NewEngine(7)
		plant := newFakePlant(eng.Now, "a")
		plant.failures["a"] = 5
		l := NewLoop(eng, plant, LoopConfig{Interval: 30 * time.Second, Seed: 42})
		l.Add("a", &countingController{})
		l.Start()
		eng.Run(10 * time.Minute)
		return l.Stats(), plant.applied["a"]
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 {
		t.Errorf("stats diverged: %+v vs %+v", s1, s2)
	}
	if len(d1) != len(d2) {
		t.Fatalf("decision counts diverged: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Errorf("decision %d diverged: %+v vs %+v", i, d1[i], d2[i])
		}
	}
}
