package control

import (
	"testing"
	"time"

	"evolve/internal/plo"
	"evolve/internal/resource"
)

func TestLimitsClamp(t *testing.T) {
	l := Limits{
		MinAlloc:    resource.New(100, 64<<20, 1e6, 1e6),
		MaxAlloc:    resource.New(4000, 8<<30, 500e6, 500e6),
		MinReplicas: 1,
		MaxReplicas: 10,
	}
	d := l.Clamp(Decision{Replicas: 0, Alloc: resource.New(10, 1<<40, 2e6, 2e6)})
	if d.Replicas != 1 {
		t.Errorf("Replicas = %d, want 1", d.Replicas)
	}
	if d.Alloc[resource.CPU] != 100 {
		t.Errorf("cpu = %v, want floor 100", d.Alloc[resource.CPU])
	}
	if d.Alloc[resource.Memory] != float64(8<<30) {
		t.Errorf("memory = %v, want ceiling 8Gi", d.Alloc[resource.Memory])
	}
	d = l.Clamp(Decision{Replicas: 99, Alloc: resource.New(200, 1<<30, 2e6, 2e6)})
	if d.Replicas != 10 {
		t.Errorf("Replicas = %d, want cap 10", d.Replicas)
	}
	// Zero MaxReplicas means unbounded.
	unbounded := Limits{MinReplicas: 1}
	if got := unbounded.Clamp(Decision{Replicas: 1000}); got.Replicas != 1000 {
		t.Errorf("unbounded Replicas clamped to %d", got.Replicas)
	}
}

func TestObservationPerfError(t *testing.T) {
	o := Observation{
		PLO: plo.Latency(100 * time.Millisecond),
		SLI: 0.2,
	}
	if e := o.PerfError(); e != 1 {
		t.Errorf("PerfError = %v, want 1", e)
	}
}

func TestHold(t *testing.T) {
	o := Observation{Replicas: 3, Alloc: resource.New(500, 1<<30, 1e6, 1e6)}
	d := Hold(o)
	if d.Replicas != 3 || d.Alloc != o.Alloc {
		t.Errorf("Hold = %+v", d)
	}
}
