package control

import (
	"fmt"
	"testing"
	"time"

	"evolve/internal/sim"
)

// Gates for the sharded control loop: worker-count invariance of every
// observable output, and the allocation budget of the serial path the
// 1-worker configuration must keep taking.

// quietPlant is a minimal plant for worker sweeps: per-app replica
// state that decisions actually move, plus an order log so actuation
// sequence (not just content) is compared across worker counts.
type quietPlant struct {
	apps     []string
	now      func() time.Duration
	replicas map[string]int
	order    []string
	events   []string
}

func newQuietPlant(now func() time.Duration, n int) *quietPlant {
	p := &quietPlant{now: now, replicas: make(map[string]int, n)}
	for i := 0; i < n; i++ {
		app := fmt.Sprintf("app-%02d", i)
		p.apps = append(p.apps, app)
		p.replicas[app] = 1 + i%5
	}
	return p
}

func (p *quietPlant) Apps() []string { return p.apps }

func (p *quietPlant) Observe(app string) (Observation, error) {
	o := sighted(p.replicas[app])
	o.App, o.Now = app, p.now()
	return o, nil
}

func (p *quietPlant) ApplyDecision(app string, d Decision) error {
	p.replicas[app] = d.Replicas
	p.order = append(p.order, fmt.Sprintf("%s=%d", app, d.Replicas))
	return nil
}

func (p *quietPlant) RecordEvent(kind, object, message string) {
	p.events = append(p.events, kind+"/"+object+": "+message)
}

// runWorkerSweep drives one loop at the given worker count and returns
// its observable fingerprint: actuation order, final replica state,
// events and stats, all rendered to a string.
func runWorkerSweep(t *testing.T, workers int) string {
	t.Helper()
	eng := sim.NewEngine(7)
	plant := newQuietPlant(eng.Now, 23)
	l := NewLoop(eng, plant, LoopConfig{Interval: 15 * time.Second, Workers: workers})
	for _, app := range plant.apps {
		l.Add(app, &countingController{})
	}
	l.OnFatal(func(err error) { t.Fatalf("loop fatal (workers=%d): %v", workers, err) })
	l.Start()
	eng.Run(5 * time.Minute)
	return fmt.Sprintf("order=%v\nreplicas=%v\nevents=%v\nstats=%+v",
		plant.order, fmt.Sprintf("%v", plant.replicas), plant.events, l.Stats())
}

// TestLoopWorkersDeterministic: the sharded evaluate/apply split must
// actuate the same decisions in the same order as the serial loop at
// every worker count, including workers beyond the app count.
func TestLoopWorkersDeterministic(t *testing.T) {
	want := runWorkerSweep(t, 1)
	for _, workers := range []int{2, 3, 7, 32} {
		if got := runWorkerSweep(t, workers); got != want {
			t.Errorf("workers=%d: output diverged from serial loop\n got: %s\nwant: %s", workers, got, want)
		}
	}
}

// TestControlEvalAllocs pins the steady-state allocation budget of the
// serial (1-worker) control step: the path every existing scenario
// takes must not regress when the sharded machinery is compiled in.
// The plant here is deliberately allocation-free so the measurement
// isolates the loop itself (observe → harden → decide → actuate).
func TestControlEvalAllocs(t *testing.T) {
	eng := sim.NewEngine(3)
	plant := newQuietPlant(eng.Now, 16)
	plant.order = make([]string, 0, 1<<16)
	plant.events = make([]string, 0, 1<<10)
	l := NewLoop(eng, plant, LoopConfig{Interval: 15 * time.Second, Workers: 1})
	for _, app := range plant.apps {
		l.Add(app, &countingController{})
	}
	l.OnFatal(func(err error) { t.Fatalf("loop fatal: %v", err) })
	l.Start()
	horizon := time.Minute
	eng.Run(horizon) // warmup: scratch buffers, timer chain, map growth

	allocs := testing.AllocsPerRun(50, func() {
		horizon += 15 * time.Second
		eng.Run(horizon)
	})
	t.Logf("serial control period: %.1f allocs (16 apps)", allocs)
	// Budget: the order-log fmt.Sprintf in the plant costs 2 allocations
	// per app (measured 32.0 for 16 apps); the loop machinery itself
	// must add nothing on top. 40 leaves slack for fmt internals
	// shifting across Go releases while still catching a single new
	// per-app allocation in the loop (which would read 48+).
	if maxAllocs := 40.0; allocs > maxAllocs {
		t.Errorf("serial control period allocates %.1f times, want <= %.0f", allocs, maxAllocs)
	}
}
