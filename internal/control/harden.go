package control

import (
	"fmt"
)

// HardenConfig parameterises the degraded-mode wrapper.
type HardenConfig struct {
	// MaxBlind is how many consecutive blind control periods (no usable
	// telemetry, see Observation.Blind) the wrapper tolerates before
	// degrading from hold-in-place to the conservative hold-last-safe
	// stance. Default 3.
	MaxBlind int
}

// DefaultHardenConfig returns the standard staleness budget.
func DefaultHardenConfig() HardenConfig { return HardenConfig{MaxBlind: 3} }

// Hardened wraps a controller with observation-health tracking. While the
// observation carries usable telemetry it is a transparent passthrough
// (and remembers the decision as the last safe one). On a blind
// observation the inner controller is not called at all — its integral
// state freezes exactly where the last sighted decision left it
// (anti-windup by omission) — and the wrapper holds the current state.
// Past the staleness budget it degrades: the decision becomes the
// component-wise maximum of the current state and the last safe
// decision, so a blind controller may keep capacity but never sheds it.
type Hardened struct {
	inner Controller
	cfg   HardenConfig

	blind    int  // consecutive blind periods
	degraded bool // past the staleness budget
	lastSafe Decision
	haveSafe bool
	status   string
}

// Harden wraps inner; a zero cfg takes defaults.
func Harden(inner Controller, cfg HardenConfig) *Hardened {
	if cfg.MaxBlind <= 0 {
		cfg.MaxBlind = DefaultHardenConfig().MaxBlind
	}
	return &Hardened{inner: inner, cfg: cfg}
}

// Name implements Controller.
func (h *Hardened) Name() string { return h.inner.Name() }

// Inner returns the wrapped controller (for tracing and debug views).
func (h *Hardened) Inner() Controller { return h.inner }

// Degraded reports whether the wrapper is past its staleness budget.
func (h *Hardened) Degraded() bool { return h.degraded }

// BlindPeriods returns the current consecutive-blind count.
func (h *Hardened) BlindPeriods() int { return h.blind }

// Status describes the wrapper's health stance after the latest Decide:
// empty while sighted, a one-line reason while blind or degraded.
func (h *Hardened) Status() string { return h.status }

// Decide implements Controller with the degraded-mode state machine.
func (h *Hardened) Decide(o Observation) Decision {
	if !o.Blind() {
		if h.blind > 0 {
			h.status = fmt.Sprintf("recovered: telemetry restored after %d blind period(s)", h.blind)
		} else {
			h.status = ""
		}
		h.blind, h.degraded = 0, false
		d := h.inner.Decide(o)
		h.lastSafe, h.haveSafe = d, true
		return d
	}
	h.blind++
	d := Hold(o)
	if h.blind <= h.cfg.MaxBlind {
		h.status = fmt.Sprintf("blind for %d period(s) (budget %d): integral frozen, holding", h.blind, h.cfg.MaxBlind)
		return d
	}
	h.degraded = true
	if h.haveSafe {
		// Conservative stance: keep at least the last allocation a
		// sighted controller chose. Scaling up on no data is speculative;
		// scaling down on no data is how outages start.
		if h.lastSafe.Replicas > d.Replicas {
			d.Replicas = h.lastSafe.Replicas
		}
		d.Alloc = d.Alloc.Max(h.lastSafe.Alloc)
	}
	h.status = fmt.Sprintf("degraded: blind for %d periods (budget %d), holding last safe allocation", h.blind, h.cfg.MaxBlind)
	return d
}
