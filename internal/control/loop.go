package control

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"evolve/internal/obs"
	"evolve/internal/par"
	"evolve/internal/perf"
	"evolve/internal/sim"
)

// Plant is the actuation surface the control loop drives; the cluster
// substrate satisfies it. Observe aggregates telemetry since the last
// call; ApplyDecision may fail transiently (see IsTransient), in which
// case the loop retries with backoff.
type Plant interface {
	Apps() []string
	Observe(app string) (Observation, error)
	ApplyDecision(app string, d Decision) error
}

// Recorder is optionally implemented by plants with an operational
// journal; the loop writes controller rationale and degraded-mode
// transitions to it.
type Recorder interface {
	RecordEvent(kind, object, message string)
}

// RetryConfig bounds the actuation retry ladder.
type RetryConfig struct {
	// MaxAttempts is how many retries follow a failed actuation before
	// the loop abandons the decision (the next control period supersedes
	// it anyway). Default 3.
	MaxAttempts int
	// Base is the first backoff; attempt n waits Base·2ⁿ. Default 2s.
	Base time.Duration
	// Cap bounds the backoff. Default 30s.
	Cap time.Duration
	// Jitter is the ± fraction applied to each backoff. Zero takes the
	// default 0.25; a negative value (see JitterNone) selects an
	// explicit zero-jitter ladder for deterministic retry timing.
	Jitter float64
}

// JitterNone is the RetryConfig.Jitter sentinel for "no jitter at all".
// The zero value of Jitter means "use the default", so an explicit
// zero-jitter ladder needs a distinct representation.
const JitterNone = -1.0

// DefaultRetryConfig returns the standard backoff ladder: 2s, 4s, 8s
// (±25%), then abandon.
func DefaultRetryConfig() RetryConfig {
	return RetryConfig{MaxAttempts: 3, Base: 2 * time.Second, Cap: 30 * time.Second, Jitter: 0.25}
}

// LoopConfig parameterises a control loop.
type LoopConfig struct {
	// Interval is the control period.
	Interval time.Duration
	// Seed drives the retry jitter. The loop's RNG is independent of the
	// simulation engine's streams, so retries (which only happen under
	// faults) never perturb fault-free runs.
	Seed int64
	// Workers fans the read-only evaluate phase of each control period
	// (observe → harden → decide → trace-fragment construction) out over
	// that many concurrent workers, partitioning apps with sim.ShardOf.
	// The apply phase (stats, tracer records, actuation, retries) stays
	// serial in canonical app order, so runs are byte-identical at any
	// value. 0 or 1 keeps the exact serial step. Workers is configuration,
	// not state: checkpoints ignore it and a restored loop uses whatever
	// the restoring process configured.
	Workers int
	// Harden and Retry take defaults when zero.
	Harden HardenConfig
	Retry  RetryConfig
}

// BatchActuator is optionally implemented by plants that can amortise
// per-decision work across one control period's apply phase. The loop
// brackets the parallel-eval apply walk with Begin/End; everything the
// plant caches inside the window must be invariant for the duration of
// the step event (the simulated world cannot change mid-event), so
// results stay byte-identical. Retries and chaos-delayed applies fire
// outside the window and see the live world.
type BatchActuator interface {
	BeginActuationBatch()
	EndActuationBatch()
}

// CtrlTiming accumulates control-period wall time, split into the
// evaluate fan-out and the serial apply walk. Serial (Workers<=1) loops
// attribute the whole step to ApplyNs. Wall-clock observation only —
// never part of the simulated state.
type CtrlTiming struct {
	Periods uint64
	EvalNs  int64
	ApplyNs int64
}

// MSPerPeriod returns the mean wall milliseconds per control period.
func (t *CtrlTiming) MSPerPeriod() float64 {
	if t.Periods == 0 {
		return 0
	}
	return float64(t.EvalNs+t.ApplyNs) / float64(t.Periods) / 1e6
}

// LoopStats counts what the loop did.
type LoopStats struct {
	// Decisions is the number of control decisions taken.
	Decisions uint64
	// DegradedPeriods counts control periods spent in degraded mode;
	// DegradedTransitions counts entries into it.
	DegradedPeriods, DegradedTransitions uint64
	// Retries counts scheduled actuation retries; Abandoned counts
	// decisions given up after the retry budget.
	Retries, Abandoned uint64
}

// Loop is the periodic controller driver shared by the public facade and
// the experiment harness: observe every app, decide through a Hardened
// wrapper (integral freeze while blind, hold-last-safe past the
// staleness budget), trace, actuate, and retry failed actuations with
// exponential backoff and jitter. One Loop drives one plant.
type Loop struct {
	eng    *sim.Engine
	plant  Plant
	cfg    LoopConfig
	tracer *obs.Tracer
	rng    *sim.RNG

	ctrl          map[string]*Hardened
	lastDecision  map[string]Decision
	prevAdapts    map[string]int
	lastRationale map[string]string
	retryGen      map[string]uint64
	// degradedSince marks when each app entered degraded mode, so the
	// recovery transition can record the whole episode as one span.
	degradedSince map[string]time.Duration

	// pendingRetries mirrors the in-flight retry timers, keyed by the
	// unique tag each retry event carries, so a checkpoint can rebuild
	// the retry closures on restore. Entries are removed when their
	// event fires (superseded or not).
	pendingRetries map[string]retryEntry
	retrySeq       uint64

	// Parallel-eval scratch (stepSharded): the per-period eval tuples in
	// canonical app order, the per-worker index partitions, and the
	// reusable pool jobs. All reused across periods.
	evalBuf    []ctrlEval
	evalGroups [][]int32
	evalJobs   []evalJob

	// timing/phases are wall-clock observation hooks (EnableTiming /
	// SetPhases); both nil by default so the serial step stays untouched.
	timing *CtrlTiming
	phases *perf.PhaseBreakdown

	stats   LoopStats
	onFatal func(error)
	started bool
	killed  bool   // Kill'd by a ctrl-crash window, awaiting Restart
	cancel  func() // stops the periodic step (armed by Start/Restart)
}

// ctrlEval is one app's evaluate-phase result: everything the serial
// apply walk needs to replay the exact serial step without re-deciding.
type ctrlEval struct {
	app    string
	h      *Hardened
	o      Observation
	d      Decision
	err    error
	wasDeg bool
	nowDeg bool
	// traced is set when the tracer was enabled at eval time; ev/adapts
	// then carry the pre-built decide event and adaptation count.
	traced bool
	adapts int
	ev     obs.Event
}

// evalJob runs one worker's partition of the evaluate phase on the
// shared bounded pool.
type evalJob struct {
	l   *Loop
	idx []int32
	wg  *sync.WaitGroup
}

// Run implements par.Job.
func (j *evalJob) Run() {
	defer j.wg.Done()
	for _, i := range j.idx {
		j.l.evalOne(&j.l.evalBuf[i])
	}
}

// retryEntry is the rebuildable description of one scheduled retry.
type retryEntry struct {
	app     string
	d       Decision
	attempt int
	gen     uint64
}

// NewLoop builds a loop over the plant. Call Add for every app, then
// Start once.
func NewLoop(eng *sim.Engine, plant Plant, cfg LoopConfig) *Loop {
	if cfg.Interval <= 0 {
		cfg.Interval = 15 * time.Second
	}
	if cfg.Retry.MaxAttempts <= 0 {
		cfg.Retry.MaxAttempts = DefaultRetryConfig().MaxAttempts
	}
	if cfg.Retry.Base <= 0 {
		cfg.Retry.Base = DefaultRetryConfig().Base
	}
	if cfg.Retry.Cap <= 0 {
		cfg.Retry.Cap = DefaultRetryConfig().Cap
	}
	if cfg.Retry.Jitter == 0 {
		cfg.Retry.Jitter = DefaultRetryConfig().Jitter
	} else if cfg.Retry.Jitter < 0 {
		// JitterNone (or any negative sentinel): explicit zero jitter.
		cfg.Retry.Jitter = 0
	}
	return &Loop{
		eng:   eng,
		plant: plant,
		cfg:   cfg,
		// The loop RNG must not fork from the engine: forking draws from
		// the engine stream and would shift every downstream component's
		// randomness, breaking seed-compatibility with pre-loop runs.
		rng:            sim.NewRNG(cfg.Seed ^ 0x6c6f6f70), // "loop"
		tracer:         obs.Nop(),
		ctrl:           make(map[string]*Hardened),
		lastDecision:   make(map[string]Decision),
		prevAdapts:     make(map[string]int),
		lastRationale:  make(map[string]string),
		retryGen:       make(map[string]uint64),
		degradedSince:  make(map[string]time.Duration),
		pendingRetries: make(map[string]retryEntry),
		onFatal:        func(err error) { panic(err) },
	}
}

// SetTracer installs the decision tracer (obs.Nop to disable).
func (l *Loop) SetTracer(t *obs.Tracer) {
	if t == nil {
		t = obs.Nop()
	}
	l.tracer = t
}

// OnFatal installs the handler for non-transient loop errors (observe
// failures, invalid decisions). The default panics, matching what an
// unhandled control-plane bug did before the loop existed; embedders
// install a handler that stops the engine and fails the run.
func (l *Loop) OnFatal(fn func(error)) {
	if fn != nil {
		l.onFatal = fn
	}
}

// Add registers the controller for an app, wrapping it in the
// degraded-mode Hardened state machine. Replacing a controller resets
// its health state.
func (l *Loop) Add(app string, c Controller) {
	l.ctrl[app] = Harden(c, l.cfg.Harden)
}

// Controller returns the inner (unwrapped) controller for an app.
func (l *Loop) Controller(app string) (Controller, bool) {
	h, ok := l.ctrl[app]
	if !ok {
		return nil, false
	}
	return h.inner, true
}

// Hardened returns the degraded-mode wrapper for an app.
func (l *Loop) Hardened(app string) (*Hardened, bool) {
	h, ok := l.ctrl[app]
	return h, ok
}

// LastDecision returns the most recent decision taken for an app.
func (l *Loop) LastDecision(app string) (Decision, bool) {
	d, ok := l.lastDecision[app]
	return d, ok
}

// Stats returns a snapshot of the loop counters.
func (l *Loop) Stats() LoopStats { return l.stats }

// EnableTiming turns on control-period wall-clock accounting and returns
// the accumulator (idempotent). Timing wraps the serial step in two
// time.Now calls; the step body itself is unchanged.
func (l *Loop) EnableTiming() *CtrlTiming {
	if l.timing == nil {
		l.timing = &CtrlTiming{}
	}
	return l.timing
}

// SetPhases mirrors the loop's eval/apply wall time into a shared
// perf.PhaseBreakdown (the cluster's tick breakdown), so control-period
// cost shows up next to the tick phases in bench rows. Nil disables.
func (l *Loop) SetPhases(pb *perf.PhaseBreakdown) { l.phases = pb }

// recordTiming accumulates one period's wall time into the enabled
// sinks.
func (l *Loop) recordTiming(evalNs, applyNs int64) {
	if l.timing != nil {
		l.timing.Periods++
		l.timing.EvalNs += evalNs
		l.timing.ApplyNs += applyNs
	}
	if l.phases != nil {
		l.phases.Add(perf.PhaseCtrlEval, evalNs)
		l.phases.Add(perf.PhaseCtrlApply, applyNs)
	}
}

// Start arms the periodic control step. Idempotent.
func (l *Loop) Start() {
	if l.started {
		return
	}
	l.started = true
	l.eng.TagNext("loop", "")
	l.cancel = l.eng.Every(l.cfg.Interval, l.step)
}

// Kill stops the loop mid-run — the ctrl-crash chaos kind's model of the
// controller process dying. The periodic step is cancelled and every
// outstanding retry is superseded (its timer fires as a no-op): in-
// flight decisions are lost exactly as they would be with the process.
// The controllers' state survives in memory only so the harness can
// measure against it; a real restart comes from a checkpoint via
// Restart.
func (l *Loop) Kill() {
	if !l.started || l.killed {
		return
	}
	l.killed = true
	if l.cancel != nil {
		l.cancel()
	}
	for app := range l.retryGen {
		l.retryGen[app]++
	}
}

// Killed reports whether the loop is down pending Restart.
func (l *Loop) Killed() bool { return l.killed }

// Restart re-arms the periodic step after Kill — the controller process
// coming back up. Callers restore checkpointed controller state first
// (LoadState); the first step fires one interval after the restart.
func (l *Loop) Restart() {
	if !l.started || !l.killed {
		return
	}
	l.killed = false
	l.eng.TagNext("loop", "")
	l.cancel = l.eng.Every(l.cfg.Interval, l.step)
}

// step runs one control period: the exact serial walk at Workers<=1,
// the evaluate/apply split otherwise. Both produce byte-identical
// results; see DESIGN.md "Control-plane sharding & deterministic apply".
func (l *Loop) step() {
	if l.cfg.Workers > 1 {
		l.stepSharded()
		return
	}
	if l.timing == nil && l.phases == nil {
		l.stepSerial()
		return
	}
	t0 := time.Now()
	l.stepSerial()
	// The serial step interleaves evaluation and actuation per app, so
	// the whole period is attributed to apply.
	l.recordTiming(0, time.Since(t0).Nanoseconds())
}

// stepSerial runs one control period over every app, in the plant's
// (sorted) app order so the decision sequence is deterministic. This is
// the original single-threaded step, kept verbatim so the 1-worker path
// holds its allocation budget.
func (l *Loop) stepSerial() {
	rec, _ := l.plant.(Recorder)
	for _, app := range l.plant.Apps() {
		h, ok := l.ctrl[app]
		if !ok {
			continue
		}
		o, err := l.plant.Observe(app)
		if err != nil {
			l.onFatal(fmt.Errorf("control: observe %s: %w", app, err))
			return
		}
		wasDegraded := h.Degraded()
		d := h.Decide(o)
		l.stats.Decisions++
		l.lastDecision[app] = d
		l.prevAdapts[app] = TraceDecision(l.tracer, o, d, h.inner, l.prevAdapts[app])
		if h.Degraded() != wasDegraded {
			l.traceHealth(h, o, wasDegraded, rec)
		}
		if h.Degraded() {
			l.stats.DegradedPeriods++
		}
		// A new decision supersedes any outstanding retries for the app.
		l.retryGen[app]++
		l.actuate(app, d, 0, l.retryGen[app])
		if rec != nil {
			if ex, ok := h.inner.(Explainer); ok {
				if r := ex.Rationale(); r != "" && r != l.lastRationale[app] {
					l.lastRationale[app] = r
					rec.RecordEvent("autoscale", app, r)
				}
			}
		}
	}
}

// stepSharded is the parallel control period: a read-only evaluate
// fan-out over cfg.Workers partitions (apps assigned by sim.ShardOf, so
// the partition is stable across runs and worker counts), then a serial
// apply walk in canonical app order replaying exactly what stepSerial
// would have done. Evaluation touches only per-app state (the app's
// observation window, its Hardened wrapper, its controller) and draws no
// shared RNG, so the tuples are independent of worker scheduling; every
// order-sensitive effect — stats, tracer records, retry-jitter draws,
// actuations — happens in the apply walk.
func (l *Loop) stepSharded() {
	apps := l.plant.Apps()
	buf := l.evalBuf[:0]
	for _, app := range apps {
		if h, ok := l.ctrl[app]; ok {
			buf = append(buf, ctrlEval{app: app, h: h})
		}
	}
	l.evalBuf = buf
	if len(buf) == 0 {
		return
	}
	workers := l.cfg.Workers
	if workers > len(buf) {
		workers = len(buf)
	}

	var t0 time.Time
	timing := l.timing != nil || l.phases != nil
	if timing {
		t0 = time.Now()
	}
	if workers <= 1 {
		for i := range buf {
			l.evalOne(&buf[i])
		}
	} else {
		for len(l.evalGroups) < workers {
			l.evalGroups = append(l.evalGroups, nil)
		}
		for len(l.evalJobs) < workers {
			l.evalJobs = append(l.evalJobs, evalJob{l: l})
		}
		groups := l.evalGroups[:workers]
		for w := range groups {
			groups[w] = groups[w][:0]
		}
		for i := range buf {
			w := sim.ShardOf(buf[i].app, workers)
			groups[w] = append(groups[w], int32(i))
		}
		var wg sync.WaitGroup
		for w := 1; w < workers; w++ {
			if len(groups[w]) == 0 {
				continue
			}
			job := &l.evalJobs[w]
			job.idx, job.wg = groups[w], &wg
			wg.Add(1)
			par.Submit(job)
		}
		for _, i := range groups[0] {
			l.evalOne(&buf[i])
		}
		wg.Wait()
	}
	var evalNs int64
	if timing {
		evalNs = time.Since(t0).Nanoseconds()
		t0 = time.Now()
	}

	l.applyEvals()
	if timing {
		l.recordTiming(evalNs, time.Since(t0).Nanoseconds())
	}
}

// evalOne computes one app's evaluate tuple. Called from pool workers:
// it must only read loop maps (no writes happen during the fan-out) and
// mutate per-app state.
func (l *Loop) evalOne(e *ctrlEval) {
	o, err := l.plant.Observe(e.app)
	if err != nil {
		e.err = err
		return
	}
	e.o = o
	e.wasDeg = e.h.Degraded()
	e.d = e.h.Decide(o)
	e.nowDeg = e.h.Degraded()
	if l.tracer.Enabled() {
		e.traced = true
		e.ev, e.adapts = decideEvent(o, e.d, e.h.inner, l.prevAdapts[e.app])
	}
}

// applyEvals replays the buffered evaluate tuples serially in canonical
// app order: the stats, tracer records, health transitions, actuations
// and retry scheduling land in exactly the sequence stepSerial produces.
// An observe error surfaces at its canonical position and stops the
// walk, matching the serial early return (later apps have already been
// evaluated then — the one divergence from serial, and only on runs
// that are failing fatally anyway).
func (l *Loop) applyEvals() {
	rec, _ := l.plant.(Recorder)
	if ba, ok := l.plant.(BatchActuator); ok {
		ba.BeginActuationBatch()
		defer ba.EndActuationBatch()
	}
	for i := range l.evalBuf {
		e := &l.evalBuf[i]
		if e.err != nil {
			l.onFatal(fmt.Errorf("control: observe %s: %w", e.app, e.err))
			return
		}
		l.stats.Decisions++
		l.lastDecision[e.app] = e.d
		if e.traced {
			l.tracer.Record(e.ev)
			if e.adapts > l.prevAdapts[e.app] {
				l.tracer.Record(adaptEvent(e.ev))
			}
			l.prevAdapts[e.app] = e.adapts
		}
		if e.nowDeg != e.wasDeg {
			l.traceHealth(e.h, e.o, e.wasDeg, rec)
		}
		if e.nowDeg {
			l.stats.DegradedPeriods++
		}
		// A new decision supersedes any outstanding retries for the app.
		l.retryGen[e.app]++
		l.actuate(e.app, e.d, 0, l.retryGen[e.app])
		if rec != nil {
			if ex, ok := e.h.inner.(Explainer); ok {
				if r := ex.Rationale(); r != "" && r != l.lastRationale[e.app] {
					l.lastRationale[e.app] = r
					rec.RecordEvent("autoscale", e.app, r)
				}
			}
		}
	}
}

// traceHealth records a degraded-mode transition onto the tracer, the
// journal and the stats.
func (l *Loop) traceHealth(h *Hardened, o Observation, wasDegraded bool, rec Recorder) {
	verb := obs.VerbDegraded
	if wasDegraded {
		verb = obs.VerbRecovered
	} else {
		l.stats.DegradedTransitions++
		l.degradedSince[o.App] = o.Now
	}
	if l.tracer.Enabled() {
		l.tracer.Record(obs.Event{
			At: o.Now, Kind: obs.KindFault, Verb: verb, App: o.App,
			Detail: h.Status(), Replicas: o.Replicas, Ready: o.ReadyReplicas,
		})
		if wasDegraded {
			// Close the degraded episode as one completed span so the
			// timeline shows its whole extent, not just the edge events.
			l.tracer.RecordSpan(obs.Span{
				Kind: obs.SpanSegment, App: o.App, Object: o.App,
				Detail: "degraded", Shard: -1,
				Start: l.degradedSince[o.App], End: o.Now,
			})
		}
	}
	if rec != nil {
		rec.RecordEvent("degraded-mode", o.App, h.Status())
	}
}

// actuate applies a decision, scheduling a backoff retry on transient
// failure. A retry fires only if no newer decision for the app has been
// taken meanwhile (gen check).
func (l *Loop) actuate(app string, d Decision, attempt int, gen uint64) {
	err := l.plant.ApplyDecision(app, d)
	if err == nil {
		return
	}
	if !IsTransient(err) {
		l.onFatal(fmt.Errorf("control: apply decision %s: %w", app, err))
		return
	}
	if attempt >= l.cfg.Retry.MaxAttempts {
		l.stats.Abandoned++
		if l.tracer.Enabled() {
			l.tracer.Record(obs.Event{
				At: l.eng.Now(), Kind: obs.KindFault, Verb: obs.VerbAbandon, App: app,
				Detail:      fmt.Sprintf("actuation abandoned after %d attempts: %v", attempt+1, err),
				NewReplicas: d.Replicas, NewAlloc: d.Alloc,
			})
		}
		return
	}
	backoff := l.cfg.Retry.Base << uint(attempt)
	if backoff > l.cfg.Retry.Cap {
		backoff = l.cfg.Retry.Cap
	}
	backoff = time.Duration(l.rng.Jitter(float64(backoff), l.cfg.Retry.Jitter))
	l.stats.Retries++
	if l.tracer.Enabled() {
		l.tracer.Record(obs.Event{
			At: l.eng.Now(), Kind: obs.KindFault, Verb: obs.VerbRetry, App: app,
			Detail: fmt.Sprintf("attempt %d failed (%v); retrying in %v", attempt+1, err, backoff),
		})
	}
	key := strconv.FormatUint(l.retrySeq, 10)
	l.retrySeq++
	l.pendingRetries[key] = retryEntry{app: app, d: d, attempt: attempt, gen: gen}
	l.eng.TagNext("retry", key)
	l.eng.After(backoff, func() {
		delete(l.pendingRetries, key)
		if l.retryGen[app] != gen {
			return // superseded by a newer decision
		}
		l.actuate(app, d, attempt+1, gen)
	})
}
