package evolve

import (
	"strings"
	"testing"
	"time"
)

const sampleConfig = `{
  "seed": 9, "nodes": 4, "policy": "evolve", "durationMinutes": 30,
  "services": [
    {"name": "web", "archetype": "web", "baseRate": 300,
     "latencyObjectiveMs": 100,
     "load": {"kind": "diurnal", "trough": 150, "peak": 900,
              "periodMinutes": 60, "noise": 0.05}},
    {"name": "kv", "archetype": "kvstore", "baseRate": 150,
     "load": {"kind": "constant"}}
  ],
  "batch": [{"name": "etl", "scale": 0.5, "submitAtMinutes": 2}],
  "hpc":   [{"name": "sim", "ranks": 2, "submitAtMinutes": 3}]
}`

func TestNewFromConfigEndToEnd(t *testing.T) {
	c, dur, err := NewFromConfig(strings.NewReader(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	if dur != 30*time.Minute {
		t.Errorf("duration = %v", dur)
	}
	if err := c.Run(dur); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if len(rep.Services) != 2 {
		t.Fatalf("services = %d", len(rep.Services))
	}
	if rep.BatchJobsCompleted != 1 || rep.HPCJobsCompleted != 1 {
		t.Errorf("jobs: %+v", rep)
	}
	for _, s := range rep.Services {
		if s.ViolationFraction > 0.1 {
			t.Errorf("service %s violations = %.3f", s.Name, s.ViolationFraction)
		}
	}
}

func TestNewFromConfigPools(t *testing.T) {
	cfg := `{
	  "seed": 2, "durationMinutes": 10,
	  "pools": [{"name": "svc", "nodes": 2}, {"name": "hpc", "nodes": 2}],
	  "services": [{"name": "web", "baseRate": 100, "pool": "svc",
	                "load": {"kind": "constant"}}],
	  "hpc": [{"name": "sim", "ranks": 2, "submitAtMinutes": 1, "pool": "hpc"}]
	}`
	c, dur, err := NewFromConfig(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(dur); err != nil {
		t.Fatal(err)
	}
	if s, _ := c.HPCStatus("sim"); s != "done" {
		t.Errorf("pooled hpc job = %s", s)
	}
}

func TestNewFromConfigErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"durationMinutes": 10}`, // no workload
		`{"services": [{"name": "x", "baseRate": 0}]}`,                             // bad service
		`{"services": [{"name": "x", "baseRate": 1, "load": {"kind": "zigzag"}}]}`, // bad load kind
		`{"unknownField": true, "services": []}`,                                   // unknown field
		`{"policy": "magic", "services": [{"name":"x","baseRate":1}]}`,
	}
	for i, cfg := range cases {
		if _, _, err := NewFromConfig(strings.NewReader(cfg)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestBuildLoadShapes(t *testing.T) {
	fn, err := buildLoad(LoadConfig{Kind: "step", Before: 10, After: 30, AtMinutes: 5}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fn(time.Minute) != 10 || fn(6*time.Minute) != 30 {
		t.Error("step load wrong")
	}
	fn, err = buildLoad(LoadConfig{Kind: "flash", AtMinutes: 10, LengthMinutes: 5}, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fn(12*time.Minute) != 300 || fn(20*time.Minute) != 100 {
		t.Error("flash defaults wrong")
	}
	// Defaults: diurnal trough/peak derived from base.
	fn, err = buildLoad(LoadConfig{Kind: "diurnal"}, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fn(0) != 100 {
		t.Errorf("diurnal trough default = %v", fn(0))
	}
}
