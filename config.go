package evolve

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// FileConfig is the JSON scenario format consumed by NewFromConfig and
// `evolve-sim -config`. Durations are minutes (scenario authoring works
// in minutes; the load helpers still run on exact virtual time).
//
//	{
//	  "seed": 1, "nodes": 5, "policy": "evolve", "durationMinutes": 120,
//	  "services": [{
//	    "name": "web", "archetype": "web", "baseRate": 400,
//	    "latencyObjectiveMs": 100,
//	    "load": {"kind": "diurnal", "trough": 200, "peak": 1200,
//	             "periodMinutes": 120, "noise": 0.08}
//	  }],
//	  "batch": [{"name": "etl-0", "scale": 2, "submitAtMinutes": 15}],
//	  "hpc":   [{"name": "sim-0", "ranks": 4, "submitAtMinutes": 10}]
//	}
type FileConfig struct {
	Seed            int64   `json:"seed"`
	Nodes           int     `json:"nodes"`
	NodeShape       string  `json:"nodeShape"`
	Policy          string  `json:"policy"`
	Overprovision   float64 `json:"overprovision"`
	HPCQueue        string  `json:"hpcQueue"`
	DurationMinutes float64 `json:"durationMinutes"`
	// Chaos is a fault-injection plan: a named profile or a chaos-DSL
	// string (see Options.Chaos). Empty means fault-free.
	Chaos string `json:"chaos"`
	// Shards runs the kernel sharded (see Options.Shards); results are
	// byte-identical at any shard count.
	Shards int `json:"shards"`
	// CtrlWorkers shards the control plane (see Options.CtrlWorkers);
	// results are byte-identical at any worker count.
	CtrlWorkers int `json:"ctrlWorkers"`

	Pools []PoolConfig `json:"pools"`

	Services []ServiceConfig `json:"services"`
	Batch    []BatchConfig   `json:"batch"`
	HPC      []HPCConfig     `json:"hpc"`
}

// PoolConfig declares a labeled node pool in a FileConfig.
type PoolConfig struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
}

// ServiceConfig declares one service in a FileConfig.
type ServiceConfig struct {
	Name                string     `json:"name"`
	Archetype           string     `json:"archetype"`
	BaseRate            float64    `json:"baseRate"`
	Replicas            int        `json:"replicas"`
	LatencyObjectiveMs  float64    `json:"latencyObjectiveMs"`
	ThroughputObjective float64    `json:"throughputObjective"`
	StartupDelaySec     float64    `json:"startupDelaySec"`
	Pool                string     `json:"pool"`
	Load                LoadConfig `json:"load"`
}

// LoadConfig declares a service's offered-load shape in a FileConfig.
type LoadConfig struct {
	// Kind: "constant" (default), "diurnal", "step", "flash".
	Kind string `json:"kind"`
	// Constant / base rate.
	Rate float64 `json:"rate"`
	// Diurnal parameters.
	Trough        float64 `json:"trough"`
	Peak          float64 `json:"peak"`
	PeriodMinutes float64 `json:"periodMinutes"`
	// Step / flash parameters.
	Before        float64 `json:"before"`
	After         float64 `json:"after"`
	AtMinutes     float64 `json:"atMinutes"`
	LengthMinutes float64 `json:"lengthMinutes"`
	// Noise is a multiplicative jitter fraction applied on top.
	Noise float64 `json:"noise"`
}

// BatchConfig declares one DAG job in a FileConfig.
type BatchConfig struct {
	Name            string  `json:"name"`
	Scale           float64 `json:"scale"`
	SubmitAtMinutes float64 `json:"submitAtMinutes"`
	Pool            string  `json:"pool"`
}

// HPCConfig declares one rigid gang job in a FileConfig.
type HPCConfig struct {
	Name              string  `json:"name"`
	Ranks             int     `json:"ranks"`
	CPUSecondsPerRank float64 `json:"cpuSecondsPerRank"`
	SubmitAtMinutes   float64 `json:"submitAtMinutes"`
	Pool              string  `json:"pool"`
}

func minutes(m float64) time.Duration {
	return time.Duration(m * float64(time.Minute))
}

// buildLoad turns a LoadConfig into a LoadFunc. base is the service's
// BaseRate, used as the default for unset rates.
func buildLoad(lc LoadConfig, base float64, seed int64) (LoadFunc, error) {
	or := func(v, def float64) float64 {
		if v > 0 {
			return v
		}
		return def
	}
	var fn LoadFunc
	switch lc.Kind {
	case "", "constant":
		fn = Constant(or(lc.Rate, base))
	case "diurnal":
		fn = Diurnal(or(lc.Trough, base/2), or(lc.Peak, base*3), minutes(or(lc.PeriodMinutes, 120)))
	case "step":
		fn = Step(or(lc.Before, base), or(lc.After, base*2), minutes(lc.AtMinutes))
	case "flash":
		fn = FlashCrowd(or(lc.Before, base), or(lc.After, base*3),
			minutes(lc.AtMinutes), minutes(or(lc.LengthMinutes, 15)))
	default:
		return nil, fmt.Errorf("evolve: unknown load kind %q", lc.Kind)
	}
	if lc.Noise > 0 {
		fn = Noisy(fn, lc.Noise, seed)
	}
	return fn, nil
}

// NewFromConfig builds a fully-wired cluster from a JSON scenario and
// returns it with the configured run duration (0 when unset; callers
// choose their own horizon then).
func NewFromConfig(r io.Reader) (*Cluster, time.Duration, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var fc FileConfig
	if err := dec.Decode(&fc); err != nil {
		return nil, 0, fmt.Errorf("evolve: config: %w", err)
	}
	if len(fc.Services) == 0 && len(fc.Batch) == 0 && len(fc.HPC) == 0 {
		return nil, 0, fmt.Errorf("evolve: config declares no workload")
	}
	opts := Options{
		Seed:          fc.Seed,
		Nodes:         fc.Nodes,
		NodeShape:     fc.NodeShape,
		Policy:        fc.Policy,
		Overprovision: fc.Overprovision,
		HPCQueue:      fc.HPCQueue,
		Chaos:         fc.Chaos,
		Shards:        fc.Shards,
		CtrlWorkers:   fc.CtrlWorkers,
	}
	for _, p := range fc.Pools {
		opts.Pools = append(opts.Pools, PoolOptions{Name: p.Name, Nodes: p.Nodes})
	}
	c, err := New(opts)
	if err != nil {
		return nil, 0, err
	}
	for i, svc := range fc.Services {
		if err := c.AddService(ServiceOptions{
			Name:                svc.Name,
			Archetype:           svc.Archetype,
			BaseRate:            svc.BaseRate,
			Replicas:            svc.Replicas,
			LatencyObjective:    time.Duration(svc.LatencyObjectiveMs * float64(time.Millisecond)),
			ThroughputObjective: svc.ThroughputObjective,
			StartupDelay:        time.Duration(svc.StartupDelaySec * float64(time.Second)),
			Pool:                svc.Pool,
		}); err != nil {
			return nil, 0, err
		}
		load, err := buildLoad(svc.Load, svc.BaseRate, fc.Seed+int64(i))
		if err != nil {
			return nil, 0, fmt.Errorf("evolve: service %s: %w", svc.Name, err)
		}
		if err := c.SetLoad(svc.Name, load); err != nil {
			return nil, 0, err
		}
	}
	for _, b := range fc.Batch {
		if err := c.SubmitBatchJob(BatchJobOptions{
			Name: b.Name, Scale: b.Scale, SubmitAt: minutes(b.SubmitAtMinutes), Pool: b.Pool,
		}); err != nil {
			return nil, 0, err
		}
	}
	for _, h := range fc.HPC {
		if err := c.SubmitHPCJob(HPCJobOptions{
			Name: h.Name, Ranks: h.Ranks, CPUSecondsPerRank: h.CPUSecondsPerRank,
			SubmitAt: minutes(h.SubmitAtMinutes), Pool: h.Pool,
		}); err != nil {
			return nil, 0, err
		}
	}
	return c, minutes(fc.DurationMinutes), nil
}
