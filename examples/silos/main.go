// Silos vs sharing: the experiment behind the paper's title, on the
// public API. The same workload — two services, analytics DAGs and rigid
// HPC gangs — runs twice on the same eight nodes: first fenced into
// per-world pools (how organisations traditionally separate their cloud,
// big-data and HPC estates), then on one shared pool where priorities
// and preemption protect the services instead of fences.
//
// Run with: go run ./examples/silos
package main

import (
	"fmt"
	"log"
	"time"

	"evolve"
)

type outcome struct {
	violations  float64
	hpcDone     uint64
	hpcWait     time.Duration
	batchDone   uint64
	cpuUsedFrac float64
}

func main() {
	partitioned := run(true)
	shared := run(false)

	fmt.Println("metric                     partitioned   shared")
	fmt.Println("--------------------------------------------------")
	fmt.Printf("service violations %%       %-13.2f %.2f\n", partitioned.violations*100, shared.violations*100)
	fmt.Printf("hpc jobs finished          %-13d %d\n", partitioned.hpcDone, shared.hpcDone)
	fmt.Printf("hpc mean queue wait        %-13v %v\n", partitioned.hpcWait.Round(time.Second), shared.hpcWait.Round(time.Second))
	fmt.Printf("batch DAGs finished        %-13d %d\n", partitioned.batchDone, shared.batchDone)
	fmt.Printf("cluster cpu used %%         %-13.1f %.1f\n", partitioned.cpuUsedFrac*100, shared.cpuUsedFrac*100)
	fmt.Println("\nsame nodes, same workload: sharing clears the queues that silos create,")
	fmt.Println("while priority and preemption keep the services inside their objectives")
}

func run(partitioned bool) outcome {
	opts := evolve.Options{Seed: 42}
	var pool = func(string) string { return "" } // shared: no confinement
	if partitioned {
		opts.Pools = []evolve.PoolOptions{
			{Name: "svc", Nodes: 3},
			{Name: "batch", Nodes: 2},
			{Name: "hpc", Nodes: 3},
		}
		pool = func(p string) string { return p }
	} else {
		opts.Pools = []evolve.PoolOptions{{Name: "any", Nodes: 8}}
	}
	c, err := evolve.New(opts)
	if err != nil {
		log.Fatal(err)
	}

	for _, svc := range []struct {
		name      string
		archetype string
		base      float64
	}{{"storefront", "web", 400}, {"catalog", "kvstore", 200}} {
		if err := c.AddService(evolve.ServiceOptions{
			Name: svc.name, Archetype: svc.archetype, BaseRate: svc.base,
			Pool: pool("svc"),
		}); err != nil {
			log.Fatal(err)
		}
		if err := c.SetLoad(svc.name, evolve.Noisy(
			evolve.Diurnal(svc.base*0.5, svc.base*3, 2*time.Hour), 0.08, 7)); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if err := c.SubmitBatchJob(evolve.BatchJobOptions{
			Name: fmt.Sprintf("etl-%d", i), Scale: 2, Pool: pool("batch"),
			SubmitAt: time.Duration(i+1) * 17 * time.Minute,
		}); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := c.SubmitHPCJob(evolve.HPCJobOptions{
			Name: fmt.Sprintf("sim-%d", i), Ranks: 2 + 2*(i%3),
			CPUSecondsPerRank: 1680000, // ≈4 min per rank
			Pool:              pool("hpc"),
			SubmitAt:          time.Duration(i+1) * 3 * time.Minute,
		}); err != nil {
			log.Fatal(err)
		}
	}

	if err := c.Run(2 * time.Hour); err != nil {
		log.Fatal(err)
	}
	rep := c.Report()
	var out outcome
	for _, s := range rep.Services {
		out.violations += s.ViolationFraction / float64(len(rep.Services))
	}
	out.hpcDone = rep.HPCJobsCompleted
	out.hpcWait = rep.HPCMeanWait
	out.batchDone = rep.BatchJobsCompleted
	out.cpuUsedFrac = rep.ClusterCPUUsed
	return out
}
