// Big-data batch under contention: how do analytics makespans react when
// the DAGs share the cluster with a latency-sensitive service that has
// priority? The service's diurnal peak squeezes the batch tasks (they
// queue and occasionally get preempted), and the trough releases capacity
// back — the batch jobs' makespans trace the service's day.
//
// Run with: go run ./examples/bigdata-batch
package main

import (
	"fmt"
	"log"
	"time"

	"evolve"
)

func main() {
	// Two identical runs: batch alone, then batch sharing with a peaking
	// service. Compare makespans.
	alone := run(false)
	shared := run(true)

	fmt.Println("job            alone       sharing the cluster")
	fmt.Println("------------------------------------------------")
	for i := range alone {
		name := fmt.Sprintf("etl-%d", i)
		fmt.Printf("%-14s %-11v %v\n", name, alone[i].Round(time.Second), shared[i].Round(time.Second))
	}
	fmt.Println("\njobs submitted during the service peak stretch; trough-time jobs match the isolated run")
}

func run(withService bool) []time.Duration {
	c, err := evolve.New(evolve.Options{Seed: 55, Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	if withService {
		if err := c.AddService(evolve.ServiceOptions{
			Name: "frontend", Archetype: "web", BaseRate: 600,
		}); err != nil {
			log.Fatal(err)
		}
		// Peak squarely in the middle of the batch stream.
		if err := c.SetLoad("frontend", evolve.Diurnal(300, 2400, 2*time.Hour)); err != nil {
			log.Fatal(err)
		}
	}
	const jobs = 6
	for i := 0; i < jobs; i++ {
		if err := c.SubmitBatchJob(evolve.BatchJobOptions{
			Name:     fmt.Sprintf("etl-%d", i),
			Scale:    2,
			SubmitAt: time.Duration(i+1) * 15 * time.Minute,
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.Run(3 * time.Hour); err != nil {
		log.Fatal(err)
	}
	out := make([]time.Duration, jobs)
	for i := 0; i < jobs; i++ {
		m, done := c.BatchDone(fmt.Sprintf("etl-%d", i))
		if !done {
			m = -1
		}
		out[i] = m
	}
	return out
}
