// Microservice SLO showdown: the same disk-bound key-value store, hit by
// a flash crowd, under four resource-management policies. The KV store's
// bottleneck is disk bandwidth — which is exactly what a CPU-threshold
// autoscaler cannot see and the multi-resource EVOLVE controller can.
//
// Run with: go run ./examples/microservice-slo
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"evolve"
)

func main() {
	fmt.Println("policy        violations%   mean-SLI(ms)  verdict")
	fmt.Println("---------------------------------------------------------")
	for _, policy := range []string{"evolve", "pid-cpu-only", "hpa", "static"} {
		v, sli := run(policy)
		verdict := "holds the objective"
		if v > 0.10 {
			verdict = "misses the objective badly"
		} else if v > 0.02 {
			verdict = "struggles"
		}
		fmt.Printf("%-13s %-13.2f %-13.1f %s\n", policy, v*100, sli*1000, verdict)
	}
	fmt.Println("\nthe KV store is disk-bound: policies that only watch CPU miss the bottleneck")
}

func run(policy string) (violations, meanSLI float64) {
	c, err := evolve.New(evolve.Options{Seed: 21, Nodes: 5, Policy: policy})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.AddService(evolve.ServiceOptions{
		Name:      "kv",
		Archetype: "kvstore", // p99-latency objective, disk-I/O bound
		BaseRate:  200,
	}); err != nil {
		log.Fatal(err)
	}
	// Steady 200 op/s, then a 3x flash crowd for 20 minutes.
	if err := c.SetLoad("kv", evolve.FlashCrowd(200, 600, 30*time.Minute, 20*time.Minute)); err != nil {
		log.Fatal(err)
	}
	if err := c.Run(90 * time.Minute); err != nil {
		log.Fatal(err)
	}
	v, err := c.Violations("kv")
	if err != nil {
		log.Fatal(err)
	}
	// Export the latency series for plotting when requested.
	if os.Getenv("EVOLVE_DUMP") != "" {
		f, err := os.Create("kv-" + policy + ".csv")
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := c.WriteSeriesCSV("app/kv/latency-p99", f); err != nil {
			log.Fatal(err)
		}
	}
	for _, s := range c.Report().Services {
		if s.Name == "kv" {
			return v, s.MeanSLI
		}
	}
	return v, 0
}
