// Converged worlds: one cluster simultaneously hosting latency-sensitive
// cloud services, big-data analytics DAGs and rigid HPC gangs — the
// scenario EVOLVE's title promises. Services run at high priority with
// PLOs; analytics and HPC fill the troughs; the autoscaler keeps the
// services inside their objectives while the batch layers absorb the
// reclaimed capacity.
//
// Run with: go run ./examples/converged
package main

import (
	"fmt"
	"log"
	"time"

	"evolve"
)

func main() {
	c, err := evolve.New(evolve.Options{Seed: 33, Nodes: 6, HPCQueue: "backfill"})
	if err != nil {
		log.Fatal(err)
	}

	// The cloud side: two services with different bottlenecks and
	// opposite diurnal phases.
	if err := c.AddService(evolve.ServiceOptions{
		Name: "storefront", Archetype: "web", BaseRate: 400,
		LatencyObjective: 100 * time.Millisecond,
	}); err != nil {
		log.Fatal(err)
	}
	if err := c.AddService(evolve.ServiceOptions{
		Name: "catalog", Archetype: "kvstore", BaseRate: 250,
	}); err != nil {
		log.Fatal(err)
	}
	if err := c.SetLoad("storefront", evolve.Noisy(evolve.Diurnal(200, 1200, 2*time.Hour), 0.08, 1)); err != nil {
		log.Fatal(err)
	}
	if err := c.SetLoad("catalog", evolve.Noisy(evolve.Diurnal(125, 750, 100*time.Minute), 0.08, 2)); err != nil {
		log.Fatal(err)
	}

	// The big-data side: an analytics DAG every 20 minutes.
	for i := 0; i < 5; i++ {
		if err := c.SubmitBatchJob(evolve.BatchJobOptions{
			Name:     fmt.Sprintf("analytics-%d", i),
			Scale:    1.5,
			SubmitAt: time.Duration(i+1) * 20 * time.Minute,
		}); err != nil {
			log.Fatal(err)
		}
	}

	// The HPC side: rigid gangs of 2-6 ranks arriving every 12 minutes.
	for i := 0; i < 8; i++ {
		if err := c.SubmitHPCJob(evolve.HPCJobOptions{
			Name:     fmt.Sprintf("simulation-%d", i),
			Ranks:    2 + 2*(i%3),
			SubmitAt: time.Duration(i+1) * 12 * time.Minute,
		}); err != nil {
			log.Fatal(err)
		}
	}

	if err := c.Run(2 * time.Hour); err != nil {
		log.Fatal(err)
	}

	fmt.Print(c.Report())
	fmt.Println("\nper-job outcomes:")
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("analytics-%d", i)
		if makespan, done := c.BatchDone(name); done {
			fmt.Printf("  %-14s makespan %v\n", name, makespan.Round(time.Second))
		} else {
			fmt.Printf("  %-14s still running\n", name)
		}
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("simulation-%d", i)
		status, err := c.HPCStatus(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %s\n", name, status)
	}
}
