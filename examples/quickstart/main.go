// Quickstart: deploy one latency-sensitive web service with a 100 ms
// performance objective, drive it with a diurnal load that peaks at 3x
// the sizing point, let the EVOLVE multi-resource autoscaler manage it,
// and print the outcome.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"evolve"
)

func main() {
	// A 5-node cluster, deterministic in its seed.
	c, err := evolve.New(evolve.Options{Seed: 1, Nodes: 5})
	if err != nil {
		log.Fatal(err)
	}

	// One CPU-bound web service: sized for 300 op/s, must keep mean
	// latency under 100 ms whatever the load does.
	if err := c.AddService(evolve.ServiceOptions{
		Name:             "web",
		Archetype:        "web",
		BaseRate:         300,
		LatencyObjective: 100 * time.Millisecond,
	}); err != nil {
		log.Fatal(err)
	}

	// Load swings from 150 to 900 op/s over a 2-hour day/night cycle,
	// with ±8% noise.
	if err := c.SetLoad("web", evolve.Noisy(
		evolve.Diurnal(150, 900, 2*time.Hour), 0.08, 7)); err != nil {
		log.Fatal(err)
	}

	// Run a full cycle of virtual time (finishes in well under a second
	// of real time).
	if err := c.Run(2 * time.Hour); err != nil {
		log.Fatal(err)
	}

	fmt.Print(c.Report())
	v, _ := c.Violations("web")
	fmt.Printf("\nthe objective was violated %.2f%% of the time across a 6x load swing\n", v*100)
}
