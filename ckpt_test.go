package evolve

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"evolve/internal/obs"
)

// ckptWorld builds the standard checkpoint-test world: one diurnal web
// service, a batch DAG and an HPC gang whose tasks straddle the 30m
// checkpoint barrier, optional mixed chaos, tracing and periodic
// checkpoints. Every test constructs identical worlds — the checkpoint
// contract is "same construction + checkpoint = same world".
func ckptWorld(t *testing.T, shards int, chaos string) *Cluster {
	t.Helper()
	return ckptWorldCtrl(t, shards, chaos, 0)
}

// ckptWorldCtrl is ckptWorld with the control plane sharded: worker
// count is construction-time config, not checkpointed state, so restore
// tests can also swap it across the barrier.
func ckptWorldCtrl(t *testing.T, shards int, chaos string, ctrlWorkers int) *Cluster {
	t.Helper()
	c, err := New(Options{Seed: 21, Nodes: 6, Shards: shards, ShardWorkers: 1,
		CtrlWorkers: ctrlWorkers, Chaos: chaos})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddService(ServiceOptions{
		Name: "web", Archetype: "web", BaseRate: 300,
		LatencyObjective: 100 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoad("web", Noisy(Diurnal(150, 900, time.Hour), 0.1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitBatchJob(BatchJobOptions{Name: "sort", Scale: 0.5, SubmitAt: 25 * time.Minute}); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitHPCJob(HPCJobOptions{Name: "mpi", Ranks: 2, SubmitAt: 28 * time.Minute}); err != nil {
		t.Fatal(err)
	}
	c.EnableTracing(0)
	if err := c.EnableCheckpoints("", 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	return c
}

// ckptFingerprint flattens everything observable about a run — report,
// event log, trace ring and span ring — into one comparable string.
func ckptFingerprint(c *Cluster) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%+v\n--events--\n%+v\n", c.Report(), c.Events())
	for _, ev := range c.Tracer().Snapshot(obs.Filter{}) {
		fmt.Fprintf(&b, "%+v\n", ev)
	}
	b.WriteString("--spans--\n")
	for _, sp := range c.Tracer().SpanSnapshot(obs.SpanFilter{}) {
		fmt.Fprintf(&b, "%+v\n", sp)
	}
	return b.String()
}

// TestCheckpointRestoreContinueByteIdentical is the headline invariant:
// run → checkpoint at 30m → restore into a fresh world → continue to
// 60m is byte-identical (report, events, trace, spans) to the same
// world run uninterrupted, across the full shard matrix with chaos on
// and off. In -short mode the matrix shrinks to its corners.
func TestCheckpointRestoreContinueByteIdentical(t *testing.T) {
	shardCounts := []int{0, 1, 2, 4, 7, 16}
	chaosPlans := []string{"", "mixed"}
	if testing.Short() {
		shardCounts = []int{0, 2}
		chaosPlans = []string{"mixed"}
	}
	for _, shards := range shardCounts {
		for _, chaos := range chaosPlans {
			name := fmt.Sprintf("shards=%d/chaos=%s", shards, chaos)
			if chaos == "" {
				name = fmt.Sprintf("shards=%d/chaos=off", shards)
			}
			t.Run(name, func(t *testing.T) {
				whole := ckptWorld(t, shards, chaos)
				if err := whole.Run(time.Hour); err != nil {
					t.Fatal(err)
				}
				want := ckptFingerprint(whole)

				half := ckptWorld(t, shards, chaos)
				if err := half.Run(30 * time.Minute); err != nil {
					t.Fatal(err)
				}
				var snap bytes.Buffer
				if err := half.Checkpoint(&snap); err != nil {
					t.Fatal(err)
				}

				resumed := ckptWorld(t, shards, chaos)
				if err := resumed.Restore(bytes.NewReader(snap.Bytes())); err != nil {
					t.Fatal(err)
				}
				if resumed.Now() != 30*time.Minute {
					t.Fatalf("restored clock at %v, want 30m", resumed.Now())
				}
				if err := resumed.Run(30 * time.Minute); err != nil {
					t.Fatal(err)
				}
				got := ckptFingerprint(resumed)
				if got != want {
					i := 0
					for i < len(got) && i < len(want) && got[i] == want[i] {
						i++
					}
					lo := max(0, i-200)
					t.Errorf("restored run diverged from uninterrupted run at byte %d:\n--- uninterrupted\n…%s\n--- restored\n…%s",
						i, want[lo:min(len(want), i+200)], got[lo:min(len(got), i+200)])
				}
			})
		}
	}
}

// TestCheckpointRestoreWithCtrlWorkers extends the headline invariant
// across the control-plane sharding knob: a run with CtrlWorkers=3 that
// checkpoints at 30m and restores into a CtrlWorkers=1 world (and vice
// versa) must still land byte-identical to the serial uninterrupted
// run — worker count is configuration, not state, so it may legally
// change across the restore barrier without moving a byte.
func TestCheckpointRestoreWithCtrlWorkers(t *testing.T) {
	whole := ckptWorldCtrl(t, 2, "mixed", 1)
	if err := whole.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	want := ckptFingerprint(whole)

	for _, w := range [][2]int{{3, 1}, {1, 3}, {3, 3}} {
		t.Run(fmt.Sprintf("before=%d/after=%d", w[0], w[1]), func(t *testing.T) {
			half := ckptWorldCtrl(t, 2, "mixed", w[0])
			if err := half.Run(30 * time.Minute); err != nil {
				t.Fatal(err)
			}
			var snap bytes.Buffer
			if err := half.Checkpoint(&snap); err != nil {
				t.Fatal(err)
			}
			resumed := ckptWorldCtrl(t, 2, "mixed", w[1])
			if err := resumed.Restore(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatal(err)
			}
			if err := resumed.Run(30 * time.Minute); err != nil {
				t.Fatal(err)
			}
			if got := ckptFingerprint(resumed); got != want {
				t.Errorf("ctrl-workers %d→%d: restored run diverged from serial uninterrupted run", w[0], w[1])
			}
		})
	}
}

// TestResumeFromPeriodicCheckpoint is the crash-resume path: the world
// dies mid-run, a fresh one restores the last periodic checkpoint (taken
// inside the timer callback, mid-timestamp — a different barrier than a
// manual post-Run snapshot) and continues byte-identically to the run
// that never died.
func TestResumeFromPeriodicCheckpoint(t *testing.T) {
	for _, shards := range []int{0, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			whole := ckptWorld(t, shards, "mixed")
			if err := whole.Run(time.Hour); err != nil {
				t.Fatal(err)
			}
			want := ckptFingerprint(whole)

			crashed := ckptWorld(t, shards, "mixed")
			if err := crashed.Run(32 * time.Minute); err != nil {
				t.Fatal(err)
			}
			if n, total := crashed.CheckpointStats(); n != 3 || total <= 0 {
				t.Fatalf("stats after 32m at 10m cadence: count=%d bytes=%d", n, total)
			}
			snap := crashed.LastCheckpoint() // the 30m one; 31–32m is lost

			resumed := ckptWorld(t, shards, "mixed")
			if err := resumed.Restore(bytes.NewReader(snap)); err != nil {
				t.Fatal(err)
			}
			if resumed.Now() != 30*time.Minute {
				t.Fatalf("restored clock at %v, want 30m", resumed.Now())
			}
			if err := resumed.Run(30 * time.Minute); err != nil {
				t.Fatal(err)
			}
			if got := ckptFingerprint(resumed); got != want {
				t.Error("resume from periodic checkpoint diverged from the uninterrupted run")
			}
		})
	}
}

// TestCtrlCrashRestartsFromCheckpoint: a ctrl-crash window kills the
// controller and the restore edge brings it back from the last
// controller checkpoint; both transitions land in the event log and the
// run replays deterministically.
func TestCtrlCrashRestartsFromCheckpoint(t *testing.T) {
	run := func() (string, []EventRecord) {
		c, err := New(Options{Seed: 9, Nodes: 4, Chaos: "ctrl-crash@20m-26m"})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddService(ServiceOptions{Name: "web", BaseRate: 300}); err != nil {
			t.Fatal(err)
		}
		if err := c.SetLoad("web", Diurnal(150, 900, time.Hour)); err != nil {
			t.Fatal(err)
		}
		if err := c.EnableCheckpoints("", 5*time.Minute); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(time.Hour); err != nil {
			t.Fatal(err)
		}
		return c.Report().String(), c.Events()
	}
	rep, events := run()
	var crashed, restarted bool
	for _, ev := range events {
		crashed = crashed || ev.Kind == "ctrl-crash"
		restarted = restarted || ev.Kind == "ctrl-restart"
	}
	if !crashed || !restarted {
		t.Errorf("event log missing crash/restart transitions (crashed=%v restarted=%v)", crashed, restarted)
	}
	if rep2, _ := run(); rep2 != rep {
		t.Errorf("ctrl-crash replay diverged:\n--- first\n%s\n--- second\n%s", rep, rep2)
	}
}

// TestCtrlCrashWithoutRestore: an open-ended ctrl-crash leaves the
// controller down for the rest of the run — the world keeps ticking,
// the report still renders.
func TestCtrlCrashWithoutRestore(t *testing.T) {
	c, err := New(Options{Seed: 9, Nodes: 4, Chaos: "ctrl-crash@20m"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddService(ServiceOptions{Name: "web", BaseRate: 300}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoad("web", Constant(300)); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	var restarted bool
	for _, ev := range c.Events() {
		restarted = restarted || ev.Kind == "ctrl-restart"
	}
	if restarted {
		t.Error("open-ended crash window must not restart the controller")
	}
}

// TestCheckpointFiles: the periodic timer writes ckpt-*.evck files,
// LatestCheckpoint finds the newest, and RestoreFile resumes from it.
func TestCheckpointFiles(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Seed: 5, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddService(ServiceOptions{Name: "svc", BaseRate: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoad("svc", Constant(100)); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableCheckpoints(dir, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(35 * time.Minute); err != nil {
		t.Fatal(err)
	}
	path, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "ckpt-000000001800.evck") {
		t.Errorf("latest checkpoint = %s, want the 30m one", path)
	}

	r, err := New(Options{Seed: 5, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddService(ServiceOptions{Name: "svc", BaseRate: 100}); err != nil {
		t.Fatal(err)
	}
	if err := r.SetLoad("svc", Constant(100)); err != nil {
		t.Fatal(err)
	}
	if err := r.EnableCheckpoints(t.TempDir(), 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := r.RestoreFile(path); err != nil {
		t.Fatal(err)
	}
	if r.Now() != 30*time.Minute {
		t.Errorf("restored clock at %v, want 30m", r.Now())
	}
	if err := r.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointValidation(t *testing.T) {
	c, err := New(Options{Seed: 2, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableCheckpoints("", 0); err == nil {
		t.Error("zero interval should fail")
	}
	if err := c.EnableCheckpoints("", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableCheckpoints("", time.Minute); err == nil {
		t.Error("double enable should fail")
	}
	var buf bytes.Buffer
	if err := c.Checkpoint(&buf); err == nil {
		t.Error("checkpoint before the first Run should fail")
	}
	if err := c.AddService(ServiceOptions{Name: "svc", BaseRate: 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLoad("svc", Constant(100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableCheckpoints("", time.Minute); err == nil {
		t.Error("enable after Run should fail")
	}
	if err := c.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("restore into a started cluster should fail")
	}

	other, err := New(Options{Seed: 3, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.AddService(ServiceOptions{Name: "svc", BaseRate: 100}); err != nil {
		t.Fatal(err)
	}
	if err := other.SetLoad("svc", Constant(100)); err != nil {
		t.Fatal(err)
	}
	if err := other.EnableCheckpoints("", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Errorf("seed mismatch not caught: %v", err)
	}
}
