package evolve

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"evolve/internal/ckpt"
	"evolve/internal/cluster"
	"evolve/internal/sim"
)

// Crash-consistent checkpoint/restore for the whole simulated world.
//
// Checkpoint serialises, in a fixed section order, everything mutable:
// the engine clock, RNG position and pending-timer set (as TimerTag
// descriptors — closures re-attach on restore), the shard coordinator,
// the batch runner, the HPC queue, the cluster substrate, the hardened
// control loop, the chaos injector and the tracer rings. Restore runs
// against a freshly constructed Cluster built with the same Options and
// the same AddService / SetLoad / Submit* calls — construction-time
// configuration (topology, specs, load functions, callbacks) is code,
// not data, so only runtime state crosses the file boundary.
//
// The headline invariant, enforced by the determinism suite: checkpoint
// → restore → continue is byte-identical (report, trace and span
// streams) to the uninterrupted run, at every shard count, chaos on or
// off.

// maxCkptTimers bounds the checkpointed timer count (a corrupted stream
// fails loudly instead of over-allocating).
const maxCkptTimers = 1 << 24

// EnableCheckpoints arms periodic checkpointing every interval of
// virtual time, starting at the first Run. Each firing snapshots the
// world at a tick barrier: the newest encoding is retained in memory
// (LastCheckpoint) and, when dir is non-empty, also written to
// dir/ckpt-<seconds>.evck (atomically, via rename). The firing also
// refreshes the controller-process state that ctrl-crash windows
// restore from — with checkpoints off, a crashed controller restarts
// from its construction-time state instead. Call before the first Run.
func (cl *Cluster) EnableCheckpoints(dir string, every time.Duration) error {
	if every <= 0 {
		return fmt.Errorf("evolve: non-positive checkpoint interval")
	}
	if cl.started {
		return fmt.Errorf("evolve: EnableCheckpoints must be called before Run")
	}
	if cl.ckptEvery > 0 {
		return fmt.Errorf("evolve: checkpoints already enabled")
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("evolve: checkpoint dir: %w", err)
		}
	}
	cl.ckptEvery, cl.ckptDir = every, dir
	return nil
}

// CheckpointStats reports how many periodic checkpoints have been
// written and their total encoded size.
func (cl *Cluster) CheckpointStats() (count int, bytes int64) {
	return cl.ckptCount, cl.ckptBytes
}

// LastCheckpoint returns a copy of the most recent periodic checkpoint
// encoding, or nil if none has been taken yet.
func (cl *Cluster) LastCheckpoint() []byte {
	if cl.lastCkpt == nil {
		return nil
	}
	return append([]byte(nil), cl.lastCkpt...)
}

// captureLoopState refreshes the controller-process blob the ctrl-crash
// restore path uses (the control plane's own checkpoint file).
func (cl *Cluster) captureLoopState() {
	blob, err := cl.loop.SaveState()
	if err != nil {
		if cl.runErr == nil {
			cl.runErr = fmt.Errorf("evolve: controller state capture: %w", err)
		}
		return
	}
	cl.lastLoopState = blob
}

// armCheckpoints schedules the periodic checkpoint timer. It is armed
// after the tick and loop timers (see start), so at shared timestamps a
// checkpoint observes the post-tick, post-decision state.
func (cl *Cluster) armCheckpoints() {
	if cl.ckptEvery <= 0 {
		return
	}
	cl.captureLoopState()
	cl.armNextCheckpoint()
}

// armNextCheckpoint self-schedules the next periodic firing. The timer
// is an After chain rather than an Every: checkpointTick re-arms BEFORE
// snapshotting, so every checkpoint carries its own successor timer and
// a restored run keeps the checkpoint cadence (an Every re-arms after
// the callback, which would leave the timer out of its own snapshot).
func (cl *Cluster) armNextCheckpoint() {
	cl.eng.TagNext("ckpt", "")
	cl.eng.After(cl.ckptEvery, cl.checkpointTick)
}

func (cl *Cluster) checkpointTick() {
	cl.armNextCheckpoint()
	cl.captureLoopState()
	var buf bytes.Buffer
	if err := cl.Checkpoint(&buf); err != nil {
		if cl.runErr == nil {
			cl.runErr = fmt.Errorf("evolve: checkpoint at %v: %w", cl.eng.Now(), err)
		}
		return
	}
	cl.lastCkpt = append(cl.lastCkpt[:0], buf.Bytes()...)
	cl.ckptCount++
	cl.ckptBytes += int64(buf.Len())
	if cl.ckptDir == "" {
		return
	}
	name := filepath.Join(cl.ckptDir, fmt.Sprintf("ckpt-%012d.evck", int64(cl.eng.Now()/time.Second)))
	tmp := name + ".tmp"
	err := os.WriteFile(tmp, buf.Bytes(), 0o644)
	if err == nil {
		err = os.Rename(tmp, name)
	}
	if err != nil && cl.runErr == nil {
		cl.runErr = fmt.Errorf("evolve: checkpoint write: %w", err)
	}
}

// armCtrlCrash schedules the kill/restore windows of any ctrl-crash
// faults in the chaos plan. The injector itself cannot arm these — they
// need the control loop and the checkpoint store — so the facade does.
func (cl *Cluster) armCtrlCrash() {
	inj := cl.c.Chaos()
	if inj == nil {
		return
	}
	crashes := inj.CtrlCrashes()
	if len(crashes) == 0 {
		return
	}
	// Without periodic checkpoints the controller restarts from its
	// construction-time state; capture it now.
	cl.captureLoopState()
	for i, f := range crashes {
		idx := strconv.Itoa(i)
		cl.eng.TagNext("ctrl-crash", idx+"/kill")
		cl.eng.At(f.From, func() {
			cl.loop.Kill()
			inj.CountCtrlCrash()
			cl.c.RecordEvent("ctrl-crash", "control-plane", "controller killed (injected fault)")
		})
		if f.To > f.From {
			cl.eng.TagNext("ctrl-crash", idx+"/restore")
			cl.eng.At(f.To, func() {
				if st := cl.lastLoopState; st != nil {
					if err := cl.loop.LoadState(st); err != nil {
						if cl.runErr == nil {
							cl.runErr = fmt.Errorf("evolve: controller restart: %w", err)
						}
						return
					}
				}
				cl.loop.Restart()
				inj.CountCtrlRestart()
				cl.c.RecordEvent("ctrl-restart", "control-plane", "controller restarted from last checkpoint")
			})
		}
	}
}

// Checkpoint writes a crash-consistent snapshot of the world to w. The
// cluster must have started (checkpoints snapshot runtime state) and be
// at a tick barrier — any point between Run calls, or inside the
// periodic checkpoint timer, qualifies.
func (cl *Cluster) Checkpoint(w io.Writer) error {
	if !cl.started {
		return fmt.Errorf("evolve: nothing to checkpoint before the first Run")
	}
	timers, err := cl.eng.PendingTimers()
	if err != nil {
		return err
	}
	co := cl.c.Coordinator()
	var coState sim.CoordinatorState
	if co != nil {
		if coState, err = co.State(); err != nil {
			return err
		}
	}
	cw := ckpt.NewWriter(w)
	cw.Begin("evolve")
	cw.I64(cl.opts.Seed)
	cw.Str(normalisePolicy(cl.opts.Policy))
	cw.Dur(cl.eng.Now())
	cw.U64(cl.eng.Seq())
	cw.U64(cl.eng.Steps())
	cw.U64(cl.eng.RNG().Draws())
	cw.Int(len(timers))
	for _, t := range timers {
		cw.Dur(t.At)
		cw.U64(t.Seq)
		cw.Str(t.Tag.Kind)
		cw.Str(t.Tag.Arg)
	}
	cw.Bool(co != nil)
	if co != nil {
		cw.U64(coState.Rounds)
		cw.U64(coState.ParRounds)
		cw.U64(coState.RoundsMark)
		cw.U64(coState.ParMark)
		cw.Int(len(coState.Shards))
		for _, s := range coState.Shards {
			cw.Dur(s.Now)
			cw.U64(s.Seq)
			cw.U64(s.Nsteps)
		}
	}
	cl.runner.CkptSave(cw)
	cl.queue.CkptSave(cw)
	cl.c.CkptSave(cw)
	cl.loop.CkptSave(cw)
	inj := cl.c.Chaos()
	cw.Bool(inj != nil)
	if inj != nil {
		inj.CkptSave(cw)
	}
	cw.Bool(cl.tracer.Enabled())
	if cl.tracer.Enabled() {
		cl.tracer.CkptSave(cw)
	}
	cw.Bytes(cl.lastLoopState)
	return cw.Close()
}

// Restore rewinds a freshly constructed Cluster to a checkpoint taken
// by an identically constructed one: same Options, same AddService /
// SetLoad / SubmitBatchJob / SubmitHPCJob calls, same EnableTracing and
// EnableCheckpoints configuration. Construction carries the code-level
// world (topology, specs, closures); the checkpoint carries the runtime
// state; Restore marries the two and re-arms every pending timer with
// its original firing order. Continue with Run — the continuation is
// byte-identical to the uninterrupted original.
func (cl *Cluster) Restore(r io.Reader) error {
	if cl.started {
		return fmt.Errorf("evolve: Restore needs a freshly constructed cluster")
	}
	// Keep a copy of the snapshot as it streams past: after a restore,
	// LastCheckpoint is the snapshot this world came from, so a process
	// that restores and then crashes again before the next periodic
	// checkpoint still has a valid restart point.
	var raw bytes.Buffer
	cr, err := ckpt.NewReader(io.TeeReader(r, &raw))
	if err != nil {
		return err
	}
	// Arm the fresh world's own timers first: RestoreTimers re-attaches
	// checkpoint timers to them by tag.
	cl.start()
	cr.Begin("evolve")
	if seed := cr.I64(); cr.Err() == nil && seed != cl.opts.Seed {
		return fmt.Errorf("evolve: checkpoint has seed %d, this cluster %d", seed, cl.opts.Seed)
	}
	if pol := cr.Str(); cr.Err() == nil && pol != normalisePolicy(cl.opts.Policy) {
		return fmt.Errorf("evolve: checkpoint has policy %q, this cluster %q", pol, normalisePolicy(cl.opts.Policy))
	}
	now := cr.Dur()
	seq := cr.U64()
	nsteps := cr.U64()
	draws := cr.U64()
	nt := cr.Int()
	if cr.Err() != nil {
		return cr.Err()
	}
	if nt < 0 || nt > maxCkptTimers {
		return fmt.Errorf("evolve: checkpoint timer count %d out of range", nt)
	}
	timers := make([]sim.PendingTimer, nt)
	for i := range timers {
		timers[i] = sim.PendingTimer{
			At:  cr.Dur(),
			Seq: cr.U64(),
			Tag: sim.TimerTag{Kind: cr.Str(), Arg: cr.Str()},
		}
	}
	co := cl.c.Coordinator()
	var coState sim.CoordinatorState
	if coPresent := cr.Bool(); coPresent != (co != nil) {
		if cr.Err() != nil {
			return cr.Err()
		}
		return fmt.Errorf("evolve: checkpoint sharding does not match this cluster's Shards option")
	}
	if co != nil {
		coState.Rounds = cr.U64()
		coState.ParRounds = cr.U64()
		coState.RoundsMark = cr.U64()
		coState.ParMark = cr.U64()
		ns := cr.Int()
		if cr.Err() != nil {
			return cr.Err()
		}
		if ns < 0 || ns > maxCkptTimers {
			return fmt.Errorf("evolve: checkpoint shard count %d out of range", ns)
		}
		coState.Shards = make([]sim.ShardClock, ns)
		for i := range coState.Shards {
			coState.Shards[i] = sim.ShardClock{Now: cr.Dur(), Seq: cr.U64(), Nsteps: cr.U64()}
		}
	}
	// Substrate order mirrors Checkpoint: batch and HPC load before the
	// cluster, whose task pods reattach their completion callbacks
	// through the restored runner and queue state.
	if err := cl.runner.CkptLoad(cr); err != nil {
		return err
	}
	if err := cl.queue.CkptLoad(cr); err != nil {
		return err
	}
	reattach := func(p *cluster.PodObject) (func(string, bool), error) {
		if fn, err := cl.runner.ReattachTask(p.Name); err == nil {
			return fn, nil
		}
		return cl.queue.ReattachRank(p.Name, p.Task.Job)
	}
	if err := cl.c.CkptLoad(cr, reattach); err != nil {
		return err
	}
	if err := cl.loop.CkptLoad(cr); err != nil {
		return err
	}
	inj := cl.c.Chaos()
	if injPresent := cr.Bool(); injPresent != (inj != nil) {
		if cr.Err() != nil {
			return cr.Err()
		}
		return fmt.Errorf("evolve: checkpoint chaos plan does not match this cluster's Chaos option")
	}
	if inj != nil {
		if err := inj.CkptLoad(cr); err != nil {
			return err
		}
	}
	if trPresent := cr.Bool(); trPresent != cl.tracer.Enabled() {
		if cr.Err() != nil {
			return cr.Err()
		}
		return fmt.Errorf("evolve: checkpoint tracing does not match (call EnableTracing before Restore)")
	}
	if cl.tracer.Enabled() {
		if err := cl.tracer.CkptLoad(cr); err != nil {
			return err
		}
	}
	if blob := cr.Bytes(); len(blob) > 0 {
		cl.lastLoopState = blob
	}
	if err := cr.Close(); err != nil {
		return err
	}

	rebuild := func(tag sim.TimerTag) (func(), error) {
		switch tag.Kind {
		case "retry":
			return cl.loop.RebuildTimer(tag.Kind, tag.Arg)
		case "task", "act-delay":
			return cl.c.RebuildTimer(tag.Kind, tag.Arg)
		}
		return nil, fmt.Errorf("evolve: no rebuilder for timer %s/%s", tag.Kind, tag.Arg)
	}
	if err := cl.eng.RestoreTimers(now, seq, nsteps, timers, rebuild); err != nil {
		return err
	}
	cl.eng.RNG().Burn(draws)
	if co != nil {
		if err := co.RestoreState(coState); err != nil {
			return err
		}
	}
	cl.lastCkpt = raw.Bytes()
	return cl.runErr
}

// RestoreFile restores from a checkpoint file (see EnableCheckpoints
// and LatestCheckpoint).
func (cl *Cluster) RestoreFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return cl.Restore(f)
}

// LatestCheckpoint returns the path of the newest checkpoint file in
// dir, as written by EnableCheckpoints.
func LatestCheckpoint(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*.evck"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("evolve: no checkpoints in %s", dir)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

// normalisePolicy maps the Options.Policy aliases onto canonical names
// so checkpoint compatibility checks compare like with like.
func normalisePolicy(p string) string {
	p = strings.ToLower(p)
	if p == "" {
		return "evolve"
	}
	return p
}
